// Engine wall-time comparison: the seed's sequential execution path versus
// the ExecutionEngine backends, at a configurable node count (default
// n = 10000).  Emits BENCH_engines.json so the perf trajectory is recorded
// run over run (CI runs this in smoke mode on every push).
//
//   usage: engines_compare [n] [reps] [out.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "local/message_passing.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

/// Per-backend repetition timings: the best (the historical headline
/// number) plus nearest-rank percentiles over the reps, so the JSON
/// records run-to-run spread and not just the lucky rep.
struct RepTiming {
  double best_ms = -1;
  double p50_ms = -1;
  double p99_ms = -1;
};

RepTiming time_reps(int reps, const std::function<bool()>& body) {
  RepTiming t;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    if (!body()) return RepTiming{};  // verdict mismatch guard
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    samples.push_back(elapsed.count());
  }
  t.best_ms = *std::min_element(samples.begin(), samples.end());
  t.p50_ms = bench::percentile_of(samples, 0.50);
  t.p99_ms = bench::percentile_of(samples, 0.99);
  return t;
}

struct WorkloadTiming {
  std::string name;
  int n = 0;
  int m = 0;
  int radius = 0;
  RepTiming seed;
  RepTiming direct;
  RepTiming direct_cached;
  RepTiming parallel;        // persistent worker pool
  RepTiming parallel_spawn;  // spawn-per-run (the pre-pool behaviour)
  RepTiming message_passing;  // only timed on small instances
};

WorkloadTiming time_workload(const std::string& name, const Graph& g,
                             const Proof& proof, const LocalVerifier& a,
                             int reps) {
  WorkloadTiming t;
  t.name = name;
  t.n = g.n();
  t.m = g.m();
  t.radius = a.radius();

  const RunResult expected = bench::seed_run_verifier(g, proof, a);
  auto agrees = [&](const RunResult& r) {
    return r.all_accept == expected.all_accept &&
           r.rejecting == expected.rejecting;
  };

  t.seed =
      time_reps(reps, [&] { return agrees(bench::seed_run_verifier(g, proof, a)); });

  DirectEngine uncached({/*cache_views=*/false});
  t.direct =
      time_reps(reps, [&] { return agrees(uncached.run(g, proof, a)); });

  DirectEngine cached;
  (void)cached.run(g, proof, a);  // warm: steady-state is the cache-hit path
  t.direct_cached =
      time_reps(reps, [&] { return agrees(cached.run(g, proof, a)); });

  ParallelEngine parallel;
  (void)parallel.run(g, proof, a);  // create the pool outside the timing
  t.parallel =
      time_reps(reps, [&] { return agrees(parallel.run(g, proof, a)); });

  ParallelEngine spawning(0, /*persistent_pool=*/false);
  t.parallel_spawn =
      time_reps(reps, [&] { return agrees(spawning.run(g, proof, a)); });

  if (g.n() <= 512) {
    MessagePassingEngine flooding;
    t.message_passing =
        time_reps(reps, [&] { return agrees(flooding.run(g, proof, a)); });
  }
  return t;
}

void print_json(std::FILE* out, const std::vector<WorkloadTiming>& rows) {
  // The parallel rows shard across every hardware thread (ParallelEngine's
  // default), so that is the fan-out this file's numbers were taken at.
  bench::json_header(out, "bench/engines_compare",
                     static_cast<int>(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WorkloadTiming& t = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"n\": %d, \"m\": %d, \"radius\": "
                 "%d,\n     \"timings_ms\": {\"seed_sequential\": %.3f, "
                 "\"direct\": %.3f, \"direct_cached\": %.3f, \"parallel\": "
                 "%.3f, \"parallel_spawn\": %.3f, \"message_passing\": "
                 "%.3f},\n",
                 t.name.c_str(), t.n, t.m, t.radius, t.seed.best_ms,
                 t.direct.best_ms, t.direct_cached.best_ms,
                 t.parallel.best_ms, t.parallel_spawn.best_ms,
                 t.message_passing.best_ms);
    std::fprintf(out,
                 "     \"p50_ms\": {\"seed_sequential\": %.3f, \"direct\": "
                 "%.3f, \"direct_cached\": %.3f, \"parallel\": %.3f, "
                 "\"parallel_spawn\": %.3f},\n"
                 "     \"p99_ms\": {\"seed_sequential\": %.3f, \"direct\": "
                 "%.3f, \"direct_cached\": %.3f, \"parallel\": %.3f, "
                 "\"parallel_spawn\": %.3f},\n",
                 t.seed.p50_ms, t.direct.p50_ms, t.direct_cached.p50_ms,
                 t.parallel.p50_ms, t.parallel_spawn.p50_ms, t.seed.p99_ms,
                 t.direct.p99_ms, t.direct_cached.p99_ms, t.parallel.p99_ms,
                 t.parallel_spawn.p99_ms);
    std::fprintf(out,
                 "     \"speedup_vs_seed\": {\"direct\": %.2f, "
                 "\"direct_cached\": %.2f, \"parallel\": %.2f, "
                 "\"parallel_spawn\": %.2f}}%s\n",
                 t.seed.best_ms / t.direct.best_ms,
                 t.seed.best_ms / t.direct_cached.best_ms,
                 t.seed.best_ms / t.parallel.best_ms,
                 t.seed.best_ms / t.parallel_spawn.best_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace
}  // namespace lcp

int main(int argc, char** argv) {
  using namespace lcp;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10000;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_engines.json";

  std::vector<WorkloadTiming> rows;

  {
    const int side = std::max(2, static_cast<int>(std::lround(std::sqrt(n))));
    const schemes::BipartiteScheme scheme;
    const Graph g = gen::grid(side, side);
    const Proof proof = *scheme.prove(g);
    rows.push_back(time_workload("grid-bipartite", g, proof,
                                 scheme.verifier(), reps));
  }
  {
    const int len = std::max(4, n - n % 2);  // even => bipartite yes-instance
    const schemes::BipartiteScheme scheme;
    const Graph g = gen::cycle(len);
    const Proof proof = *scheme.prove(g);
    rows.push_back(time_workload("cycle-bipartite", g, proof,
                                 scheme.verifier(), reps));
  }
  {
    const int len = std::max(4, n);
    const schemes::LeaderElectionScheme scheme;
    Graph g = gen::cycle(len);
    g.set_label(0, schemes::kLeaderFlag);
    const Proof proof = *scheme.prove(g);
    rows.push_back(time_workload("cycle-leader-election", g, proof,
                                 scheme.verifier(), reps));
  }

  std::printf("%-24s %8s %8s | %12s %12s %12s %12s %12s\n", "workload", "n",
              "m", "seed ms", "direct ms", "cached ms", "pool ms",
              "spawn ms");
  for (const WorkloadTiming& t : rows) {
    std::printf("%-24s %8d %8d | %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                t.name.c_str(), t.n, t.m, t.seed.best_ms, t.direct.best_ms,
                t.direct_cached.best_ms, t.parallel.best_ms,
                t.parallel_spawn.best_ms);
    std::printf("%-24s speedups vs seed: direct %.2fx, cached %.2fx, "
                "parallel %.2fx (spawn-per-run %.2fx); parallel p50/p99 "
                "%.3f/%.3fms\n",
                "", t.seed.best_ms / t.direct.best_ms,
                t.seed.best_ms / t.direct_cached.best_ms,
                t.seed.best_ms / t.parallel.best_ms,
                t.seed.best_ms / t.parallel_spawn.best_ms, t.parallel.p50_ms,
                t.parallel.p99_ms);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  print_json(out, rows);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  // Any timing of -1 means a backend disagreed with the seed semantics.
  for (const WorkloadTiming& t : rows) {
    if (t.seed.best_ms < 0 || t.direct.best_ms < 0 ||
        t.direct_cached.best_ms < 0 || t.parallel.best_ms < 0 ||
        t.parallel_spawn.best_ms < 0) {
      std::fprintf(stderr, "verdict mismatch in workload %s\n",
                   t.name.c_str());
      return 1;
    }
  }
  return 0;
}
