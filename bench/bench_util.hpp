// Shared table-printing and measurement helpers for the reproduction
// benches (not part of the library API).
#ifndef LCP_BENCH_BENCH_UTIL_HPP_
#define LCP_BENCH_BENCH_UTIL_HPP_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/growth.hpp"
#include "core/runner.hpp"
#include "core/scheme.hpp"
#include "graph/subgraph.hpp"

namespace lcp::bench {

// ---------------------------------------------------------------------------
// The seed's sequential execution path, preserved verbatim as the perf
// baseline the engine benchmarks measure against: per node, a ball walk,
// an induced-subgraph scan over every host edge, and a second BFS on the
// extracted ball.  Do not optimise this.
// ---------------------------------------------------------------------------

inline View seed_extract_view(const Graph& g, const Proof& p, int v,
                              int radius) {
  View view;
  view.radius = radius;
  const std::vector<int> nodes = ball_nodes(g, v, radius);
  view.ball = induced_subgraph(g, nodes);
  view.center = 0;
  view.proofs.reserve(nodes.size());
  for (int u : nodes) {
    view.proofs.push_back(p.labels[static_cast<std::size_t>(u)]);
  }
  view.dist = bfs_distances(view.ball, view.center);
  return view;
}

inline RunResult seed_run_verifier(const Graph& g, const Proof& p,
                                   const LocalVerifier& a) {
  RunResult result;
  for (int v = 0; v < g.n(); ++v) {
    const View view = seed_extract_view(g, p, v, a.radius());
    if (!a.accept(view)) {
      result.all_accept = false;
      result.rejecting.push_back(v);
    }
  }
  return result;
}

/// The compiler that produced this binary, for the bench JSON headers.
inline const char* compiler_id() {
#if defined(__clang_version__)
  return "clang " __clang_version__;
#elif defined(__GNUC__) && defined(__VERSION__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

/// Whether a sanitizer is baked into the build: perf numbers from such a
/// binary are not comparable and the JSON says so.
inline bool sanitized_build() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Opens a BENCH_*.json object with the provenance fields every bench
/// must record: the generating tool, the exact source revision (git
/// describe + commit, baked in at configure time), build type and
/// compiler, the machine's real hardware thread count, and the widest
/// shard/worker fan-out the run used (0 when the bench is
/// single-threaded).  Callers append their own "workloads" array and
/// close the object.
inline void json_header(std::FILE* out, const char* generated_by,
                        int shards = 0) {
#if !defined(LCP_GIT_DESCRIBE)
#define LCP_GIT_DESCRIBE ""
#endif
#if !defined(LCP_GIT_COMMIT)
#define LCP_GIT_COMMIT ""
#endif
#if !defined(LCP_BUILD_TYPE)
#define LCP_BUILD_TYPE ""
#endif
  std::fprintf(out, "{\n  \"generated_by\": \"%s\",\n", generated_by);
  std::fprintf(out, "  \"git_describe\": \"%s\",\n", LCP_GIT_DESCRIBE);
  std::fprintf(out, "  \"git_commit\": \"%s\",\n", LCP_GIT_COMMIT);
  std::fprintf(out, "  \"build_type\": \"%s\",\n", LCP_BUILD_TYPE);
  std::fprintf(out, "  \"compiler\": \"%s\",\n", compiler_id());
  std::fprintf(out, "  \"sanitized\": %s,\n",
               sanitized_build() ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"shards\": %d,\n", shards);
}

/// Nearest-rank percentile of a latency sample (µs or any unit); sorts a
/// copy, so fine for bench-sized vectors.  q in [0,1].
inline double percentile_of(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

inline void rule(char c = '-', int width = 98) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void heading(const std::string& title) {
  rule('=');
  std::printf("%s\n", title.c_str());
  rule('=');
}

/// Measures the proof size the scheme emits on each instance; verifies the
/// proof is accepted (completeness check rides along).  Returns (x, bits)
/// samples where x is the caller-provided sweep parameter.
struct SizeSample {
  double x = 0;
  int bits = 0;
  bool complete = false;
};

inline SizeSample measure(const Scheme& scheme, const Graph& g, double x,
                          ExecutionEngine& engine = default_engine()) {
  SizeSample s;
  s.x = x;
  const auto proof = scheme.prove(g);
  if (!proof.has_value()) return s;
  s.bits = proof->size_bits();
  s.complete = engine.run(g, *proof, scheme.verifier()).all_accept;
  return s;
}

/// Prints one classification row: measured sizes along the sweep, the
/// fitted growth class, the paper's bound, and the verdict.
inline void print_row(const std::string& property, const std::string& family,
                      const std::string& paper_bound,
                      const std::vector<SizeSample>& samples,
                      GrowthClass expected) {
  std::vector<std::pair<double, double>> points;
  bool complete = true;
  std::string sizes;
  for (const SizeSample& s : samples) {
    points.emplace_back(s.x, static_cast<double>(s.bits));
    complete = complete && s.complete;
    if (!sizes.empty()) sizes += ' ';
    sizes += std::to_string(s.bits);
  }
  const GrowthClass fitted = classify_growth(points);
  const bool match = fitted == expected;
  std::printf("%-28s %-12s %-14s %-24s %-13s %s\n", property.c_str(),
              family.c_str(), paper_bound.c_str(), sizes.c_str(),
              to_string(fitted).c_str(),
              complete ? (match ? "OK" : "SHAPE-MISMATCH")
                       : "INCOMPLETE");
}

inline void print_header() {
  std::printf("%-28s %-12s %-14s %-24s %-13s %s\n", "property/problem",
              "family", "paper", "bits at sweep points", "fitted", "verdict");
  rule();
}

}  // namespace lcp::bench

#endif  // LCP_BENCH_BENCH_UTIL_HPP_
