// Shared table-printing and measurement helpers for the reproduction
// benches (not part of the library API).
#ifndef LCP_BENCH_BENCH_UTIL_HPP_
#define LCP_BENCH_BENCH_UTIL_HPP_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/growth.hpp"
#include "core/runner.hpp"
#include "core/scheme.hpp"

namespace lcp::bench {

inline void rule(char c = '-', int width = 98) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void heading(const std::string& title) {
  rule('=');
  std::printf("%s\n", title.c_str());
  rule('=');
}

/// Measures the proof size the scheme emits on each instance; verifies the
/// proof is accepted (completeness check rides along).  Returns (x, bits)
/// samples where x is the caller-provided sweep parameter.
struct SizeSample {
  double x = 0;
  int bits = 0;
  bool complete = false;
};

inline SizeSample measure(const Scheme& scheme, const Graph& g, double x) {
  SizeSample s;
  s.x = x;
  const auto proof = scheme.prove(g);
  if (!proof.has_value()) return s;
  s.bits = proof->size_bits();
  s.complete = run_verifier(g, *proof, scheme.verifier()).all_accept;
  return s;
}

/// Prints one classification row: measured sizes along the sweep, the
/// fitted growth class, the paper's bound, and the verdict.
inline void print_row(const std::string& property, const std::string& family,
                      const std::string& paper_bound,
                      const std::vector<SizeSample>& samples,
                      GrowthClass expected) {
  std::vector<std::pair<double, double>> points;
  bool complete = true;
  std::string sizes;
  for (const SizeSample& s : samples) {
    points.emplace_back(s.x, static_cast<double>(s.bits));
    complete = complete && s.complete;
    if (!sizes.empty()) sizes += ' ';
    sizes += std::to_string(s.bits);
  }
  const GrowthClass fitted = classify_growth(points);
  const bool match = fitted == expected;
  std::printf("%-28s %-12s %-14s %-24s %-13s %s\n", property.c_str(),
              family.c_str(), paper_bound.c_str(), sizes.c_str(),
              to_string(fitted).c_str(),
              complete ? (match ? "OK" : "SHAPE-MISMATCH")
                       : "INCOMPLETE");
}

inline void print_header() {
  std::printf("%-28s %-12s %-14s %-24s %-13s %s\n", "property/problem",
              "family", "paper", "bits at sweep points", "fitted", "verdict");
  rule();
}

}  // namespace lcp::bench

#endif  // LCP_BENCH_BENCH_UTIL_HPP_
