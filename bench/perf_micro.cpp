// Engineering microbenchmarks (google-benchmark): the kernels every
// experiment leans on.  Not part of the paper's evaluation; useful for
// tracking regressions in the simulator and solvers.
#include <benchmark/benchmark.h>

#include "algo/bipartite.hpp"
#include "algo/canonical.hpp"
#include "algo/coloring.hpp"
#include "algo/matching.hpp"
#include "algo/maxflow.hpp"
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "local/message_passing.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"
#include "schemes/universal.hpp"

namespace lcp {
namespace {

struct EngineWorkload {
  Graph graph;
  Proof proof;
  const schemes::BipartiteScheme scheme;

  explicit EngineWorkload(int side) : graph(gen::grid(side, side)) {
    proof = *scheme.prove(graph);
  }
};

void BM_EngineSeedBaseline(benchmark::State& state) {
  const EngineWorkload w(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::seed_run_verifier(w.graph, w.proof, w.scheme.verifier()));
  }
}
BENCHMARK(BM_EngineSeedBaseline)->Arg(32)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_EngineDirect(benchmark::State& state) {
  const EngineWorkload w(static_cast<int>(state.range(0)));
  DirectEngine engine({/*cache_views=*/false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(w.graph, w.proof, w.scheme.verifier()));
  }
}
BENCHMARK(BM_EngineDirect)->Arg(32)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_EngineDirectCached(benchmark::State& state) {
  const EngineWorkload w(static_cast<int>(state.range(0)));
  DirectEngine engine;
  (void)engine.run(w.graph, w.proof, w.scheme.verifier());  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(w.graph, w.proof, w.scheme.verifier()));
  }
}
BENCHMARK(BM_EngineDirectCached)->Arg(32)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_EngineParallel(benchmark::State& state) {
  const EngineWorkload w(static_cast<int>(state.range(0)));
  ParallelEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(w.graph, w.proof, w.scheme.verifier()));
  }
}
BENCHMARK(BM_EngineParallel)->Arg(32)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_BallExtraction(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Graph g = gen::grid(side, side);
  const Proof p = Proof::empty(g.n());
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_view(g, p, v, 2));
    v = (v + 1) % g.n();
  }
}
BENCHMARK(BM_BallExtraction)->Arg(8)->Arg(16)->Arg(32);

void BM_VerifierBipartiteCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const schemes::BipartiteScheme scheme;
  const Graph g = gen::cycle(n);
  const Proof proof = *scheme.prove(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(default_engine().run(g, proof, scheme.verifier()));
  }
}
BENCHMARK(BM_VerifierBipartiteCycle)->Arg(64)->Arg(256)->Arg(1024);

void BM_VerifierLeaderElection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const schemes::LeaderElectionScheme scheme;
  Graph g = gen::cycle(n);
  g.set_label(0, schemes::kLeaderFlag);
  const Proof proof = *scheme.prove(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(default_engine().run(g, proof, scheme.verifier()));
  }
}
BENCHMARK(BM_VerifierLeaderElection)->Arg(64)->Arg(256);

void BM_ProverLeaderElection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const schemes::LeaderElectionScheme scheme;
  Graph g = gen::random_connected(n, 0.1, 7);
  g.set_label(0, schemes::kLeaderFlag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.prove(g));
  }
}
BENCHMARK(BM_ProverLeaderElection)->Arg(64)->Arg(256);

void BM_ProverUniversal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const schemes::UniversalScheme scheme("true",
                                        [](const Graph&) { return true; });
  const Graph g = gen::random_connected(n, 0.2, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.prove(g));
  }
}
BENCHMARK(BM_ProverUniversal)->Arg(16)->Arg(32);

void BM_MessagePassingRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = gen::cycle(n);
  const Proof p = Proof::empty(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assemble_view_by_flooding(g, p, 0, 2));
  }
}
BENCHMARK(BM_MessagePassingRound)->Arg(64)->Arg(256);

void BM_KuhnMatching(benchmark::State& state) {
  const int half = static_cast<int>(state.range(0));
  const Graph g = gen::complete_bipartite(half, half);
  const auto side = *two_coloring(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_bipartite_matching(g, side));
  }
}
BENCHMARK(BM_KuhnMatching)->Arg(16)->Arg(32);

void BM_WeightedDuals(benchmark::State& state) {
  const int half = static_cast<int>(state.range(0));
  Graph g = gen::complete_bipartite(half, half);
  for (int e = 0; e < g.m(); ++e) g.set_edge_weight(e, (e * 7) % 8);
  const auto side = *two_coloring(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_matching_duals(g, side));
  }
}
BENCHMARK(BM_WeightedDuals)->Arg(6)->Arg(10);

void BM_ThreeColoringPetersen(benchmark::State& state) {
  const Graph g = gen::petersen();
  for (auto _ : state) {
    benchmark::DoNotOptimize(k_coloring(g, 3));
  }
}
BENCHMARK(BM_ThreeColoringPetersen);

void BM_CanonicalKey7(benchmark::State& state) {
  const Graph g = gen::random_graph(7, 0.4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(g));
  }
}
BENCHMARK(BM_CanonicalKey7);

void BM_MengerGrid(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Graph g = gen::grid(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(st_vertex_connectivity(g, 0, side * side - 1));
  }
}
BENCHMARK(BM_MengerGrid)->Arg(6)->Arg(10);

}  // namespace
}  // namespace lcp

BENCHMARK_MAIN();
