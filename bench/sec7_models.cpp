// Section 7.1: LogLCP is robust across models — unique identifiers (M1)
// versus port numbering + leader (M2) — at an O(log n) translation cost.
// Section 3.2: the Korman et al. PLS model is strictly weaker (agreement).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "local/pls_model.hpp"
#include "local/port_model.hpp"
#include "schemes/agreement.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

void translation_table() {
  std::printf("M1 -> M2 translation (Section 7.1): parity of n, certified\n"
              "with ports + leader only, via DFS-interval synthetic ids.\n\n");
  std::printf("  %-6s %-18s %-22s %s\n", "n", "M1 proof (bits)",
              "M2 translated (bits)", "verified");
  const auto inner = std::make_shared<schemes::ParityScheme>(true);
  const M1ToM2Scheme translated(inner);
  for (int n : {9, 17, 33, 65, 129, 257}) {
    Graph g = gen::cycle(n);
    g.set_label(0, kLeaderLabel);
    const auto inner_proof = inner->prove(g);
    const auto outer_proof = translated.prove(g);
    const bool ok =
        outer_proof.has_value() &&
        default_engine().run(g, *outer_proof, translated.verifier()).all_accept;
    std::printf("  %-6d %-18d %-22d %s\n", n,
                inner_proof.has_value() ? inner_proof->size_bits() : -1,
                outer_proof.has_value() ? outer_proof->size_bits() : -1,
                ok ? "all nodes accept" : "REJECTED");
  }
  std::printf("\n  The overhead (spanning-tree certificate + DFS intervals) "
              "is O(log n):\n  both columns grow by a constant per doubling "
              "of n.\n\n");
}

void round_trip_table() {
  std::printf("Round trip M1 -> M2 -> M1 (parity of n on unlabelled "
              "graphs):\n");
  std::printf("  %-6s %-14s %s\n", "n", "bits", "verified");
  const auto scheme = std::make_shared<M2ToM1Scheme>(
      std::make_shared<M1ToM2Scheme>(
          std::make_shared<schemes::ParityScheme>(true)));
  for (int n : {9, 33, 129}) {
    const Graph g = gen::cycle(n);
    const auto proof = scheme->prove(g);
    const bool ok = proof.has_value() &&
                    default_engine().run(g, *proof, scheme->verifier()).all_accept;
    std::printf("  %-6d %-14d %s\n", n,
                proof.has_value() ? proof->size_bits() : -1,
                ok ? "all nodes accept" : "REJECTED");
  }
  std::printf("  Two stacked translations still cost only O(log n): the "
              "class LogLCP is model-robust.\n\n");
}

void id_blindness() {
  std::printf("Identifier blindness: multiplying every id by 17 (order-\n"
              "preserving, so ports are unchanged) must not change any M2 "
              "verdict.\n");
  const M1ToM2Scheme translated(std::make_shared<schemes::ParityScheme>(true));
  Graph g = gen::random_connected(15, 0.25, 11);
  g.set_label(3, kLeaderLabel);
  const auto proof = translated.prove(g);
  std::vector<NodeId> ids = g.ids();
  for (NodeId& id : ids) id = id * 17 + 3;
  const Graph h = gen::with_ids(g, ids);
  const bool same =
      proof.has_value() &&
      default_engine().run(h, *proof, translated.verifier()).all_accept;
  std::printf("  verdict unchanged: %s\n\n", same ? "yes" : "NO (bug)");
}

void pls_separation() {
  std::printf("Section 3.2 separation: agreement ('all inputs equal').\n");
  Graph same = gen::cycle(24);
  for (int v = 0; v < 24; ++v) same.set_label(v, 1);
  Graph mixed = gen::cycle(24);
  for (int v = 0; v < 12; ++v) mixed.set_label(v, 1);

  const schemes::AgreementScheme lcp_scheme;
  const auto lcp_proof = lcp_scheme.prove(same);
  std::printf("  LCP model:  proof size %d bits; yes-instance %s, "
              "no-instance %s\n",
              lcp_proof->size_bits(),
              default_engine().run(same, *lcp_proof, lcp_scheme.verifier()).all_accept
                  ? "accepted"
                  : "rejected",
              default_engine().run(mixed, Proof::empty(24), lcp_scheme.verifier())
                      .all_accept
                  ? "ACCEPTED (bug)"
                  : "rejected");

  const schemes::PlsAgreementScheme pls;
  const Proof pls_proof = pls.prove(same);
  bool mixed_accepted_somehow = false;
  for (int mask = 0; mask < (1 << 24) && mask < (1 << 16); ++mask) {
    // sample the proof space: all 2^16 prefixes x zero suffix
    Proof p = Proof::empty(24);
    for (int v = 0; v < 24; ++v) {
      p.labels[static_cast<std::size_t>(v)].append_bit((mask >> (v % 16)) & 1);
    }
    if (run_pls_verifier(mixed, p, pls).all_accept) {
      mixed_accepted_somehow = true;
      break;
    }
  }
  std::printf("  PLS model:  proof size %d bit; yes-instance %s; mixed "
              "instance fooled by any sampled 1-bit proof: %s\n",
              pls_proof.size_bits(),
              run_pls_verifier(same, pls_proof, pls).all_accept ? "accepted"
                                                                : "rejected",
              mixed_accepted_somehow ? "YES (bug)" : "no");
  std::printf("  => 0 bits in LCP vs 1 bit in PLS: the LCP model strictly\n"
              "     generalises locally checkable labellings, the PLS model "
              "does not.\n");
}

}  // namespace
}  // namespace lcp

int main() {
  lcp::bench::heading(
      "Section 7.1 / 3.2 - model robustness and model separation");
  lcp::translation_table();
  lcp::round_trip_table();
  lcp::id_blindness();
  lcp::pls_separation();
  lcp::bench::rule();
  return 0;
}
