// Reproduces Table 1(b): local proof complexities of *solutions of graph
// problems* (labelled inputs; all schemes are strong, Section 7.2).
#include <cstdio>

#include "algo/bipartite.hpp"
#include "algo/matching.hpp"
#include "algo/traversal.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "local/pls_model.hpp"
#include "schemes/agreement.hpp"
#include "schemes/cycle_certified.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

using bench::measure;
using bench::print_header;
using bench::print_row;
using bench::SizeSample;

Graph with_greedy_matching(Graph g, std::uint64_t bit) {
  const auto mask = greedy_maximal_matching(g);
  for (int e = 0; e < g.m(); ++e) {
    if (mask[static_cast<std::size_t>(e)]) g.set_edge_label(e, bit);
  }
  return g;
}

Graph with_bfs_tree_labels(Graph g, std::uint64_t bit) {
  const RootedTree tree = bfs_tree(g, 0);
  for (int v = 1; v < g.n(); ++v) {
    g.set_edge_label(g.edge_index(v, tree.parent[static_cast<std::size_t>(v)]),
                     bit);
  }
  return g;
}

void zero_rows() {
  const schemes::MaximalMatchingScheme maximal;
  const schemes::MaximalIndependentSetScheme mis;
  const schemes::AgreementScheme agreement;
  std::vector<SizeSample> mm, mi, ag;
  for (int n : {8, 16, 32, 64, 128}) {
    mm.push_back(measure(
        maximal,
        with_greedy_matching(gen::random_connected(n, 0.2, 1),
                             schemes::MaximalMatchingScheme::kMatchedBit),
        n));
    Graph g = gen::random_connected(n, 0.2, 2);
    for (int v = 0; v < g.n(); ++v) {
      bool blocked = false;
      for (const HalfEdge& h : g.neighbors(v)) {
        blocked = blocked ||
                  g.label(h.to) ==
                      schemes::MaximalIndependentSetScheme::kInSetLabel;
      }
      if (!blocked) {
        g.set_label(v, schemes::MaximalIndependentSetScheme::kInSetLabel);
      }
    }
    mi.push_back(measure(mis, g, n));
    Graph same = gen::cycle(n);
    for (int v = 0; v < n; ++v) same.set_label(v, 1);
    ag.push_back(measure(agreement, same, n));
  }
  print_row("maximal matching", "general", "0", mm, GrowthClass::kZero);
  print_row("LCL: maximal indep. set", "general", "0", mi, GrowthClass::kZero);
  print_row("agreement (LCP model)", "general", "0", ag, GrowthClass::kZero);

  // The Section 3.2 separation: the same problem costs 1 bit in the
  // strictly weaker proof-labelling-scheme model of Korman et al.
  const schemes::PlsAgreementScheme pls;
  Graph same = gen::cycle(32);
  for (int v = 0; v < 32; ++v) same.set_label(v, 1);
  const Proof pls_proof = pls.prove(same);
  std::printf("%-28s %-12s %-14s %-24s %-13s %s\n", "agreement (PLS model)",
              "general", "1 [16]", std::to_string(pls_proof.size_bits()).c_str(),
              "Theta(1)",
              run_pls_verifier(same, pls_proof, pls).all_accept ? "OK"
                                                                : "INCOMPLETE");
}

void constant_rows() {
  const schemes::MaxMatchingBipartiteScheme konig;
  std::vector<SizeSample> km;
  for (int n : {8, 16, 32, 64, 128}) {
    Graph g = gen::complete_bipartite(n / 2, n / 2);
    const auto side = two_coloring(g);
    const auto mates = max_bipartite_matching(g, *side);
    for (int e = 0; e < g.m(); ++e) {
      if (mates[static_cast<std::size_t>(g.edge_u(e))] == g.edge_v(e)) {
        g.set_edge_label(e, schemes::MaxMatchingBipartiteScheme::kMatchedBit);
      }
    }
    km.push_back(measure(konig, g, n));
  }
  print_row("maximum matching", "bipartite", "Theta(1)", km,
            GrowthClass::kConstant);
}

void logw_row() {
  // Max-weight matching: bits grow with log W at fixed n.
  std::vector<SizeSample> mw;
  for (int w : {1, 3, 15, 63, 255}) {
    Graph g = gen::complete_bipartite(4, 4);
    std::uint32_t state = 12345;
    for (int e = 0; e < g.m(); ++e) {
      state = state * 1103515245 + 12345;
      g.set_edge_weight(e, static_cast<std::int64_t>(state >> 8) % (w + 1));
    }
    std::vector<bool> best;
    max_weight_matching_bruteforce(g, &best);
    for (int e = 0; e < g.m(); ++e) {
      if (best[static_cast<std::size_t>(e)]) {
        g.set_edge_label(e, schemes::MaxWeightMatchingScheme::kMatchedBit);
      }
    }
    const schemes::MaxWeightMatchingScheme scheme(w);
    mw.push_back(measure(scheme, g, w));
  }
  print_row("max-weight matching", "bip. W sweep", "O(log W)", mw,
            GrowthClass::kLogarithmic);
}

void logn_rows() {
  const schemes::LeaderElectionScheme leader;
  const schemes::SpanningTreeScheme spanning;
  const schemes::AcyclicScheme acyclic;
  const schemes::MaxMatchingCycleScheme cycles;
  const schemes::HamiltonianCycleScheme ham_cycle;
  const schemes::HamiltonianPathScheme ham_path;
  std::vector<SizeSample> le, sp, ac, mc, hc, hp;
  for (int n : {9, 17, 33, 65, 129}) {
    Graph lead = gen::random_connected(n, 0.15, 3);
    lead.set_label(n / 2, schemes::kLeaderFlag);
    le.push_back(measure(leader, lead, n));
    sp.push_back(measure(spanning,
                         with_bfs_tree_labels(
                             gen::random_connected(n, 0.15, 4),
                             schemes::SpanningTreeScheme::kTreeEdgeBit),
                         n));
    ac.push_back(measure(acyclic, gen::random_tree(n, 5), n));
    Graph match_cycle = gen::cycle(n);
    for (int i = 1; i + 1 < n; i += 2) {
      match_cycle.set_edge_label(
          match_cycle.edge_index(i, i + 1),
          schemes::MaxMatchingCycleScheme::kMatchedBit);
    }
    mc.push_back(measure(cycles, match_cycle, n));
    Graph hamc = gen::cycle(n);
    for (int e = 0; e < hamc.m(); ++e) {
      hamc.set_edge_label(e, schemes::HamiltonianCycleScheme::kCycleEdgeBit);
    }
    hamc.add_edge(0, n / 2);  // an unlabelled chord
    hc.push_back(measure(ham_cycle, hamc, n));
    Graph hamp = gen::path(n);
    for (int e = 0; e < hamp.m(); ++e) {
      hamp.set_edge_label(e, schemes::HamiltonianPathScheme::kPathEdgeBit);
    }
    hp.push_back(measure(ham_path, hamp, n));
  }
  print_row("leader election", "connected", "Theta(log n)", le,
            GrowthClass::kLogarithmic);
  print_row("spanning tree", "connected", "Theta(log n)", sp,
            GrowthClass::kLogarithmic);
  print_row("acyclic (forest) check", "general", "O(log n)", ac,
            GrowthClass::kLogarithmic);
  print_row("maximum matching", "cycles", "Theta(log n)", mc,
            GrowthClass::kLogarithmic);
  print_row("hamiltonian cycle", "connected", "Theta(log n)", hc,
            GrowthClass::kLogarithmic);
  print_row("hamiltonian path", "connected", "Theta(log n)", hp,
            GrowthClass::kLogarithmic);
}

}  // namespace
}  // namespace lcp

int main() {
  lcp::bench::heading(
      "Table 1(b) - local proof complexity of graph problems "
      "(PODC'11, Goos & Suomela)");
  lcp::bench::print_header();
  lcp::zero_rows();
  lcp::constant_rows();
  lcp::logw_row();
  lcp::logn_rows();
  lcp::bench::rule();
  std::printf(
      "All schemes are strong (Section 7.2): they certify the solution "
      "given in the input labels.\n");
  return 0;
}
