// Section 6.2: fixpoint-free symmetry on trees needs Theta(n) bits.
//
// The counting side: rooted trees (OEIS A000081) and asymmetric (identity)
// rooted trees both number 2^{Theta(k)} — so the G1 (.) G2 argument on
// trees forces Omega(n) bits, while Section 6.1's graphs force Omega(n^2).
// The upper-bound side: our Theta(n)-bit canonical-code scheme, measured.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "algo/trees.hpp"
#include "graph/generators.hpp"
#include "schemes/fixpoint_tree.hpp"

namespace lcp {
namespace {

void counting_table() {
  std::printf("Rooted-tree counts (A000081) and asymmetric rooted trees:\n");
  std::printf("  %-4s %-14s %-16s %s\n", "k", "rooted trees",
              "asymmetric rooted", "log2(asymmetric)");
  for (int k : {4, 6, 8, 10, 12, 14, 16, 18, 20}) {
    const auto all = rooted_trees_count(k);
    const auto rigid = asymmetric_rooted_trees_count(k);
    std::printf("  %-4d %-14llu %-16llu %.2f\n", k, all, rigid,
                rigid > 0 ? std::log2(static_cast<double>(rigid)) : 0.0);
  }
  std::printf("  (log2 grows linearly in k: |F_k| = 2^{Theta(k)}, hence the\n"
              "   Omega(n) lower bound for tree properties)\n\n");
}

void scheme_sizes() {
  const schemes::FixpointFreeTreeScheme scheme;
  std::printf("The Theta(n) upper bound, measured (canonical parentheses "
              "code + index):\n");
  std::printf("  %-6s %-10s %s\n", "n", "bits", "bits per n");
  for (int n : {8, 16, 32, 64, 128, 256}) {
    const Graph t = gen::path(n);  // even paths are fixpoint-free
    const auto proof = scheme.prove(t);
    if (!proof.has_value()) continue;
    std::printf("  %-6d %-10d %.2f\n", n, proof->size_bits(),
                static_cast<double>(proof->size_bits()) / n);
  }
  std::printf("\nFixpoint-free-tree law (bicentral with isomorphic halves):\n");
  for (int n = 2; n <= 8; ++n) {
    int yes = 0;
    int total = 0;
    for (const Graph& t : all_free_trees(n)) {
      ++total;
      if (tree_fixpoint_free_symmetry(t)) ++yes;
    }
    std::printf("  n = %d: %d of %d trees have a fixpoint-free symmetry\n", n,
                yes, total);
  }
}

}  // namespace
}  // namespace lcp

int main() {
  lcp::bench::heading(
      "Section 6.2 - fixpoint-free symmetry on trees: Theta(n) bits");
  lcp::counting_table();
  lcp::scheme_sizes();
  lcp::bench::rule();
  return 0;
}
