// Dynamic proof maintenance vs static reprove on mutation streams: the
// end-to-end serving comparison the dynamic subsystem exists for.  Each
// workload replays one deterministic mutation stream two ways:
//
//   maintain:  VerificationSession (core/session.hpp) — DeltaTracker
//              mutation, ProofMaintainer certificate repair,
//              IncrementalEngine dirty-ball verify;
//   reprove:   the static path — apply the ops, rerun the scheme's prover
//              from scratch, full stateless verification sweep.
//
// Emits BENCH_dynamic.json (CI runs this in smoke mode).
//
//   usage: dynamic_compare [n] [iterations] [out.json]
//
// Workloads (all n=10k by default):
//   edge-churn:    leader election under link churn; every iteration drops
//                  a handful of random links and restores the previous
//                  iteration's.  The acceptance gate: maintain >= 5x.
//   leader-reroot: the leader walks to a random node each iteration — the
//                  worst case for tree certificates (every dist changes).
//   matching-churn: maximal matching under the same link churn; repairs
//                  are O(deg) label patches.
//   churn-stream:  the bench/churn_stream.hpp generator — preferential-
//                  attachment growth + sliding-window link expiry — over
//                  the leader-election forest.
//   conjunction-churn: the composed-scheme workload the scheme algebra
//                  (core/compose.hpp) opens — "leader-election &
//                  maximal-matching" maintained as ONE conjunction
//                  certificate by a ComposedMaintainer, vs re-proving the
//                  composed scheme (and globally rebuilding the matching)
//                  per iteration.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "algo/matching.hpp"
#include "bench_util.hpp"
#include "churn_stream.hpp"
#include "core/engine.hpp"
#include "core/registry.hpp"
#include "core/session.hpp"
#include "dynamic/matching_maintainer.hpp"
#include "dynamic/tree_maintainer.hpp"
#include "graph/generators.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

struct StreamTiming {
  std::string name;
  int n = 0;
  int m = 0;
  int iterations = 0;
  double maintain_ms = -1;
  double reprove_ms = -1;
  // The maintain path replayed a second time with telemetry attached:
  // its wall time bounds the instrumentation overhead, and the session's
  // histograms give the percentile/phase columns below.
  double maintain_telemetry_ms = -1;
  SessionTelemetry telemetry;
  // A third replay with the flight-recorder journal live (telemetry off):
  // bounds the per-event ring-write cost on the same stream.
  double maintain_journal_ms = -1;
  std::uint64_t journal_events = 0;
  // Order-sensitive hash over the per-iteration verdicts, so offsetting
  // disagreements between the two paths cannot cancel out.
  long long checksum_maintain = -1;
  long long checksum_reprove = -1;
  std::uint64_t repair_ops = 0;
  std::uint64_t declines = 0;

  double overhead_pct() const {
    if (maintain_ms <= 0 || maintain_telemetry_ms < 0) return 0;
    return 100.0 * (maintain_telemetry_ms - maintain_ms) / maintain_ms;
  }
  double journal_overhead_pct() const {
    if (maintain_ms <= 0 || maintain_journal_ms < 0) return 0;
    return 100.0 * (maintain_journal_ms - maintain_ms) / maintain_ms;
  }
};

/// Applies a batch to a plain (Graph, Proof) pair — the static baseline's
/// mutation path, with no tracking overhead.
void apply_plain(Graph& g, Proof& p, const MutationBatch& batch) {
  for (const MutationBatch::Op& op : batch.ops()) {
    switch (op.kind) {
      case MutationBatch::Kind::kNodeLabel:
        g.set_label(op.u, op.label);
        break;
      case MutationBatch::Kind::kEdgeLabel:
        g.set_edge_label(g.edge_index(op.u, op.v), op.label);
        break;
      case MutationBatch::Kind::kEdgeWeight:
        g.set_edge_weight(g.edge_index(op.u, op.v), op.weight);
        break;
      case MutationBatch::Kind::kProofLabel:
        p.labels[static_cast<std::size_t>(op.u)] = op.bits;
        break;
      case MutationBatch::Kind::kAddEdge:
        g.add_edge(op.u, op.v, op.label, op.weight);
        break;
      case MutationBatch::Kind::kRemoveEdge:
        g.remove_edge(op.u, op.v);
        break;
      case MutationBatch::Kind::kAddNode:
        g.add_node(op.id, op.label);
        p.labels.emplace_back();
        break;
    }
  }
}

/// One deterministic stream: mutate(it, current graph) -> batch.  Both
/// replays start from identical state, so iteration i sees the same graph
/// topology and produces the same batch on either path.
using MutateFn = std::function<void(int, const Graph&, MutationBatch*)>;

/// The static path's per-iteration "reprove".  The default regenerates the
/// proof through the scheme; solution-carrying schemes (matching) pass a
/// resolver that also rebuilds the solution labelling globally.
using ResolveFn = std::function<void(const Scheme&, Graph&, Proof&)>;

void reprove_proof(const Scheme& scheme, Graph& g, Proof& p) {
  auto fresh = scheme.prove(g);
  if (fresh.has_value()) p = std::move(*fresh);
}

StreamTiming time_stream(const std::string& name, const Graph& start,
                         const Scheme& scheme,
                         std::function<std::unique_ptr<dynamic::ProofMaintainer>()>
                             make_maintainer,
                         int iterations, const MutateFn& mutate,
                         const ResolveFn& resolve = reprove_proof) {
  StreamTiming t;
  t.name = name;
  t.n = start.n();
  t.m = start.m();
  t.iterations = iterations;

  // One maintain replay; each rep rebuilds the session and the stream
  // restarts, so reps see identical batches and must agree on verdicts.
  const auto run_maintain = [&](bool telemetry, bool journal,
                                long long* verdicts_out,
                                SessionTelemetry* digest) {
    auto session = VerificationSession::on(start)
                       .scheme(scheme)
                       .engine(EngineKind::kIncremental)
                       .maintainer(make_maintainer())
                       .telemetry(telemetry)
                       .journal(journal)
                       .build();
    (void)session.verify();  // warm the incremental cache outside the timer
    long long verdicts = 0;
    const auto begin = std::chrono::steady_clock::now();
    for (int it = 0; it < iterations; ++it) {
      MutationBatch batch;
      mutate(it, session.graph(), &batch);
      verdicts = verdicts * 31 + (session.apply(batch).all_accept ? 0 : 1);
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - begin;
    *verdicts_out = verdicts;
    if (digest != nullptr) *digest = session.telemetry();
    if (journal) t.journal_events = session.journal()->total_emitted();
    t.repair_ops = session.stats().repair_ops;
    t.declines = session.stats().declined;
    return elapsed.count();
  };

  // Best-of-3 for both the bare and the instrumented replay: the
  // maintained path is milliseconds-fast, so a single run's jitter would
  // swamp the sub-percent instrumentation overhead the delta advertises.
  // Best-of-N with the variants interleaved round-robin (bare, telemetry,
  // journal per rep) so machine-load drift lands on all three equally and
  // the overhead deltas stay honest.
  constexpr int kMaintainReps = 5;
  for (int rep = 0; rep < kMaintainReps; ++rep) {
    long long verdicts = 0;
    const double ms = run_maintain(false, false, &verdicts, nullptr);
    if (rep == 0) {
      t.checksum_maintain = verdicts;
    } else if (verdicts != t.checksum_maintain) {
      std::fprintf(stderr, "maintain replay diverged in stream %s\n",
                   name.c_str());
      std::exit(1);
    }
    if (t.maintain_ms < 0 || ms < t.maintain_ms) t.maintain_ms = ms;

    // The same replay with the telemetry layer live: phase histograms,
    // trace spans, derived gauges.  Verdicts must be bit-identical.
    SessionTelemetry digest;
    const double telemetry_ms = run_maintain(true, false, &verdicts, &digest);
    if (verdicts != t.checksum_maintain) {
      std::fprintf(stderr,
                   "telemetry changed verdicts in stream %s (%lld vs %lld)\n",
                   name.c_str(), verdicts, t.checksum_maintain);
      std::exit(1);
    }
    if (t.maintain_telemetry_ms < 0 || telemetry_ms < t.maintain_telemetry_ms) {
      t.maintain_telemetry_ms = telemetry_ms;
      t.telemetry = digest;
    }

    // And with the flight recorder live (telemetry off), so the journal's
    // ring-write cost is measured in isolation.
    const double journal_ms = run_maintain(false, true, &verdicts, nullptr);
    if (verdicts != t.checksum_maintain) {
      std::fprintf(stderr,
                   "journal changed verdicts in stream %s (%lld vs %lld)\n",
                   name.c_str(), verdicts, t.checksum_maintain);
      std::exit(1);
    }
    if (t.maintain_journal_ms < 0 || journal_ms < t.maintain_journal_ms) {
      t.maintain_journal_ms = journal_ms;
    }
  }

  {
    Graph g = start;
    Proof p = scheme.prove(g).value_or(Proof::empty(g.n()));
    long long verdicts = 0;
    const auto begin = std::chrono::steady_clock::now();
    for (int it = 0; it < iterations; ++it) {
      MutationBatch batch;
      mutate(it, g, &batch);
      apply_plain(g, p, batch);
      resolve(scheme, g, p);
      verdicts =
          verdicts * 31 +
          (sweep_sequential(g, p, scheme.verifier()).all_accept ? 0 : 1);
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - begin;
    t.reprove_ms = elapsed.count();
    t.checksum_reprove = verdicts;
  }
  return t;
}

/// Link churn: remove `churn` pseudo-random links, restore the previous
/// iteration's removals.  Identical schedule on both replay paths.
MutateFn churn_stream(int churn) {
  auto removed = std::make_shared<std::vector<std::pair<int, int>>>();
  return [churn, removed](int it, const Graph& g, MutationBatch* batch) {
    if (it == 0) removed->clear();  // the stream replays once per path
    for (const auto& [u, v] : *removed) batch->add_edge(u, v);
    removed->clear();
    std::mt19937 rng(static_cast<std::uint32_t>(7919 * it + 13));
    std::vector<std::pair<int, int>> picks;
    for (int i = 0; i < churn && g.m() > 1; ++i) {
      const int e = std::uniform_int_distribution<int>(0, g.m() - 1)(rng);
      picks.emplace_back(g.edge_u(e), g.edge_v(e));
    }
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    for (const auto& [u, v] : picks) {
      batch->remove_edge(u, v);
      removed->emplace_back(u, v);
    }
  };
}

StreamTiming edge_churn_workload(int n, int iterations) {
  static const schemes::LeaderElectionScheme scheme;
  Graph g = gen::random_connected(n, 2.0 / n, 4242);
  g.set_label(0, schemes::kLeaderFlag);
  const int churn = std::max(1, n / 1000);
  return time_stream(
      "edge-churn-leader", g, scheme,
      [] {
        return std::make_unique<dynamic::TreeCertMaintainer>(
            schemes::kLeaderFlag);
      },
      iterations, churn_stream(churn));
}

StreamTiming leader_reroot_workload(int n, int iterations) {
  static const schemes::LeaderElectionScheme scheme;
  Graph g = gen::random_connected(n, 2.0 / n, 2323);
  g.set_label(0, schemes::kLeaderFlag);
  auto leader = std::make_shared<int>(0);
  auto mutate = [n, leader](int it, const Graph&, MutationBatch* batch) {
    if (it == 0) *leader = 0;
    std::mt19937 rng(static_cast<std::uint32_t>(104729 * it + 7));
    int next = std::uniform_int_distribution<int>(0, n - 1)(rng);
    if (next == *leader) next = (next + 1) % n;
    batch->set_node_label(*leader, 0);
    batch->set_node_label(next, schemes::kLeaderFlag);
    *leader = next;
  };
  return time_stream(
      "leader-reroot", g, scheme,
      [] {
        return std::make_unique<dynamic::TreeCertMaintainer>(
            schemes::kLeaderFlag);
      },
      iterations, mutate);
}

StreamTiming churn_stream_workload(int n, int iterations) {
  // The ROADMAP's churn-stream generator (bench/churn_stream.hpp):
  // preferential-attachment growth plus sliding-window link expiry over a
  // leader-election forest — growth, merges, splits and window expiries in
  // one realistic stream rather than uniform remove/re-add.
  static const schemes::LeaderElectionScheme scheme;
  Graph g = gen::random_connected(n, 2.0 / n, 9191);
  g.set_label(0, schemes::kLeaderFlag);
  auto stream = std::make_shared<bench::ChurnStream>(
      bench::ChurnStream::Options{.grow_probability = 0.5,
                                  .attach_edges = 2,
                                  .churn_edges = std::max(2, n / 2000),
                                  .window = 10,
                                  .seed = 321});
  auto mutate = [stream](int it, const Graph& g2, MutationBatch* batch) {
    stream->next(it, g2, batch);
  };
  return time_stream(
      "churn-stream-leader", g, scheme,
      [] {
        return std::make_unique<dynamic::TreeCertMaintainer>(
            schemes::kLeaderFlag);
      },
      iterations, mutate);
}

StreamTiming matching_churn_workload(int n, int iterations) {
  static const schemes::MaximalMatchingScheme scheme;
  Graph g = gen::random_connected(n, 2.0 / n, 7777);
  const std::vector<bool> matched = greedy_maximal_matching(g);
  for (int e = 0; e < g.m(); ++e) {
    if (matched[static_cast<std::size_t>(e)]) {
      g.set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
    }
  }
  const int churn = std::max(1, n / 1000);
  // The static baseline for a solution-carrying scheme rebuilds the
  // solution labels globally: greedy matching from scratch per iteration.
  // (The maintained path repairs them in O(deg) instead.)
  auto resolve = [](const Scheme& s, Graph& g2, Proof&) {
    if (s.holds(g2)) return;
    const std::vector<bool> fresh = greedy_maximal_matching(g2);
    for (int e = 0; e < g2.m(); ++e) {
      g2.set_edge_label(e,
                        fresh[static_cast<std::size_t>(e)]
                            ? schemes::MaximalMatchingScheme::kMatchedBit
                            : 0);
    }
  };
  return time_stream(
      "matching-churn", g, scheme,
      [] {
        return std::make_unique<dynamic::MatchingMaintainer>(
            schemes::MaximalMatchingScheme::kMatchedBit);
      },
      iterations, churn_stream(churn), resolve);
}

StreamTiming conjunction_churn_workload(int n, int iterations) {
  // The workload family the scheme algebra opens: spanning forest (leader
  // election) AND maximal matching certified by ONE conjunction proof,
  // maintained under link churn by a ComposedMaintainer that dispatches
  // repairs to the tree and matching maintainers and re-encodes the
  // concatenated labels.  The static baseline re-proves the composed
  // scheme per iteration, rebuilding the matching globally whenever churn
  // broke it.
  static const std::unique_ptr<Scheme> scheme =
      builtin_registry().build("leader-election & maximal-matching");
  Graph g = gen::random_connected(n, 2.0 / n, 5151);
  g.set_label(0, schemes::kLeaderFlag);
  const std::vector<bool> matched = greedy_maximal_matching(g);
  for (int e = 0; e < g.m(); ++e) {
    if (matched[static_cast<std::size_t>(e)]) {
      g.set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
    }
  }
  const int churn = std::max(1, n / 1000);
  auto resolve = [](const Scheme& s, Graph& g2, Proof& p) {
    if (!s.holds(g2)) {
      const std::vector<bool> fresh = greedy_maximal_matching(g2);
      for (int e = 0; e < g2.m(); ++e) {
        g2.set_edge_label(e,
                          fresh[static_cast<std::size_t>(e)]
                              ? schemes::MaximalMatchingScheme::kMatchedBit
                              : 0);
      }
    }
    reprove_proof(s, g2, p);
  };
  return time_stream(
      "conjunction-churn", g, *scheme,
      [] { return make_maintainer_for(*scheme, builtin_registry()); },
      iterations, churn_stream(churn), resolve);
}

void print_json(std::FILE* out, const std::vector<StreamTiming>& rows) {
  // Maintainers and the incremental engine are single-threaded.
  bench::json_header(out, "bench/dynamic_compare", /*shards=*/0);
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StreamTiming& t = rows[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"n\": %d, \"m\": %d, \"iterations\": %d,\n"
        "     \"timings_ms\": {\"maintain_incremental\": %.3f, "
        "\"reprove_full\": %.3f, \"maintain_telemetry\": %.3f, "
        "\"maintain_journal\": %.3f},\n"
        "     \"speedup\": %.2f, \"repair_ops\": %llu, \"declines\": %llu, "
        "\"checksums_agree\": %s,\n"
        "     \"telemetry_overhead_pct\": %.2f, "
        "\"journal_overhead_pct\": %.2f, \"journal_events\": %llu,\n"
        "     \"apply_latency_us\": {\"p50\": %.1f, \"p90\": %.1f, "
        "\"p99\": %.1f},\n"
        "     \"phases\": [",
        t.name.c_str(), t.n, t.m, t.iterations, t.maintain_ms, t.reprove_ms,
        t.maintain_telemetry_ms, t.maintain_journal_ms,
        t.reprove_ms / t.maintain_ms,
        static_cast<unsigned long long>(t.repair_ops),
        static_cast<unsigned long long>(t.declines),
        t.checksum_maintain == t.checksum_reprove ? "true" : "false",
        t.overhead_pct(), t.journal_overhead_pct(),
        static_cast<unsigned long long>(t.journal_events),
        t.telemetry.apply_p50_us, t.telemetry.apply_p90_us,
        t.telemetry.apply_p99_us);
    for (std::size_t j = 0; j < t.telemetry.phases.size(); ++j) {
      const SessionTelemetry::Phase& ph = t.telemetry.phases[j];
      std::fprintf(out,
                   "%s\n       {\"name\": \"%s\", \"count\": %llu, "
                   "\"total_us\": %.1f, \"p99_us\": %.1f}",
                   j > 0 ? "," : "", ph.name.c_str(),
                   static_cast<unsigned long long>(ph.count), ph.total_us,
                   ph.p99_us);
    }
    std::fprintf(out, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace
}  // namespace lcp

int main(int argc, char** argv) {
  using namespace lcp;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10000;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_dynamic.json";

  std::vector<StreamTiming> rows;
  rows.push_back(edge_churn_workload(n, iterations));
  rows.push_back(leader_reroot_workload(n, iterations));
  rows.push_back(matching_churn_workload(n, iterations));
  rows.push_back(churn_stream_workload(n, iterations));
  rows.push_back(conjunction_churn_workload(n, iterations));

  std::printf("%-18s %8s %8s %6s | %12s %12s %9s | %9s %9s %7s %7s\n",
              "stream", "n", "m", "iters", "maintain", "reprove", "speedup",
              "apply-p50", "apply-p99", "obs-ovh", "jnl-ovh");
  for (const StreamTiming& t : rows) {
    std::printf(
        "%-18s %8d %8d %6d | %10.1fms %10.1fms %8.2fx | %7.1fus %7.1fus "
        "%6.1f%% %6.1f%%\n",
        t.name.c_str(), t.n, t.m, t.iterations, t.maintain_ms, t.reprove_ms,
        t.reprove_ms / t.maintain_ms, t.telemetry.apply_p50_us,
        t.telemetry.apply_p99_us, t.overhead_pct(), t.journal_overhead_pct());
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  print_json(out, rows);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  // The two paths must agree on which iterations saw alarms.
  for (const StreamTiming& t : rows) {
    if (t.checksum_maintain != t.checksum_reprove) {
      std::fprintf(stderr, "verdict mismatch in stream %s (%lld vs %lld)\n",
                   t.name.c_str(), t.checksum_maintain, t.checksum_reprove);
      return 1;
    }
  }
  return 0;
}
