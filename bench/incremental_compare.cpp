// Incremental vs direct vs parallel on attack-loop workloads: a mutation
// loop flips a small fraction of labels (or churns edges) per iteration
// and re-verifies the whole graph.  Emits BENCH_incremental.json recording
// wall times and the incremental speedup (CI runs this in smoke mode).
//
//   usage: incremental_compare [n] [iterations] [out.json]
//
// Workloads:
//   proof-tamper:  n-cycle leader election; each iteration restores the
//                  previous tampers and corrupts ~0.5% of the proof labels
//                  (<= 1% of labels mutated per iteration).
//   edge-churn:    grid bipartiteness; each iteration removes a handful of
//                  edges and re-adds the previous iteration's removals.
//   edge-churn-r2: the same structural churn under a radius-2 verifier
//                  (13-node diamond balls): extraction dominates, the
//                  regime view patching targets.
//   edge-relabel-r2: label-only churn at radius 2 — every delta patches in
//                  place, the flagship for View::apply_delta.
//   exhaustive:    exists_accepted_proof on a small odd cycle (the
//                  odometer loop mutates 1-2 labels per candidate).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/checker.hpp"
#include "core/delta.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

struct LoopTiming {
  std::string name;
  int n = 0;
  int m = 0;
  int iterations = 0;
  double mutated_fraction = 0;  // labels mutated per iteration
  double direct_ms = -1;
  double direct_cached_ms = -1;
  double parallel_ms = -1;
  double incremental_ms = -1;
  double incremental_nopatch_ms = -1;  // PR 3 config: re-extract dirty balls
  double incremental_noverify_ms = -1;
  // Nearest-rank percentiles of the incremental engine's per-iteration
  // wall time (mutate + dirty re-verify), in microseconds: the serving-
  // latency view the aggregate totals above hide.
  double incremental_iter_p50_us = 0;
  double incremental_iter_p90_us = 0;
  double incremental_iter_p99_us = 0;
  long long checksum_direct = -1;  // total rejecting nodes over the loop
};

/// Replays the same mutation loop against one engine.  Mutations go
/// through a DeltaTracker on fresh copies of (graph, proof); the checksum
/// (total rejecting nodes across iterations) must agree across engines.
/// When iter_us is non-null it receives each iteration's wall time.
template <typename MutateFn>
long long run_loop(ExecutionEngine& engine, const Graph& graph,
                   const Proof& proof, const LocalVerifier& verifier,
                   int iterations, int horizon, MutateFn&& mutate,
                   std::vector<double>* iter_us = nullptr) {
  Graph g = graph;
  Proof p = proof;
  DeltaTracker tracker(g, p, horizon);
  const TrackerAttachment attachment(engine, tracker);
  long long checksum = 0;
  (void)engine.run(g, p, verifier);  // identical warm-up for every engine
  for (int it = 0; it < iterations; ++it) {
    const auto iter_start = std::chrono::steady_clock::now();
    MutationBatch batch;
    mutate(it, g, p, batch);
    tracker.apply(batch);
    const RunResult r = engine.run(g, p, verifier);
    checksum += static_cast<long long>(r.rejecting.size());
    if (iter_us != nullptr) {
      const std::chrono::duration<double, std::micro> iter_elapsed =
          std::chrono::steady_clock::now() - iter_start;
      iter_us->push_back(iter_elapsed.count());
    }
  }
  return checksum;
}

template <typename MutateFn>
LoopTiming time_loop(const std::string& name, const Graph& graph,
                     const Proof& proof, const LocalVerifier& verifier,
                     int iterations, int horizon, double mutated_fraction,
                     MutateFn&& mutate) {
  LoopTiming t;
  t.name = name;
  t.n = graph.n();
  t.m = graph.m();
  t.iterations = iterations;
  t.mutated_fraction = mutated_fraction;

  auto timed = [&](ExecutionEngine& engine, bool is_reference,
                   std::vector<double>* iter_us = nullptr) {
    const auto start = std::chrono::steady_clock::now();
    const long long c = run_loop(engine, graph, proof, verifier, iterations,
                                 horizon, mutate, iter_us);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    if (is_reference) {
      t.checksum_direct = c;
      return elapsed.count();
    }
    return c == t.checksum_direct ? elapsed.count() : -1.0;
  };

  DirectEngine uncached({/*cache_views=*/false});
  t.direct_ms = timed(uncached, /*is_reference=*/true);
  DirectEngine cached;
  t.direct_cached_ms = timed(cached, false);
  ParallelEngine parallel;
  t.parallel_ms = timed(parallel, false);
  IncrementalEngine incremental;
  std::vector<double> iter_us;
  t.incremental_ms = timed(incremental, false, &iter_us);
  t.incremental_iter_p50_us = bench::percentile_of(iter_us, 0.50);
  t.incremental_iter_p90_us = bench::percentile_of(iter_us, 0.90);
  t.incremental_iter_p99_us = bench::percentile_of(iter_us, 0.99);
  IncrementalEngine nopatch({.patch_views = false});
  t.incremental_nopatch_ms = timed(nopatch, false);
  IncrementalEngine noverify({.verify_state = false});
  t.incremental_noverify_ms = timed(noverify, false);
  return t;
}

LoopTiming proof_tamper_workload(int n, int iterations) {
  const schemes::LeaderElectionScheme scheme;
  Graph g = gen::cycle(n);
  g.set_label(0, schemes::kLeaderFlag);
  const Proof honest = *scheme.prove(g);
  const int flips = std::max(1, n / 200);  // 0.5% of labels per iteration

  // Deterministic tamper schedule, identical for every engine: iteration
  // it clears `flips` labels and restores the previous iteration's.
  auto mutate = [honest, flips, n](int it, const Graph&, const Proof&,
                                   MutationBatch& batch) {
    std::mt19937 rng(static_cast<std::uint32_t>(it));
    std::uniform_int_distribution<int> node(0, n - 1);
    if (it > 0) {
      std::mt19937 prev_rng(static_cast<std::uint32_t>(it - 1));
      for (int i = 0; i < flips; ++i) {
        const int v = std::uniform_int_distribution<int>(0, n - 1)(prev_rng);
        batch.set_proof_label(
            v, honest.labels[static_cast<std::size_t>(v)]);
      }
    }
    for (int i = 0; i < flips; ++i) {
      batch.set_proof_label(node(rng), BitString{});
    }
  };
  return time_loop("attack-loop-proof-tamper", g, honest, scheme.verifier(),
                   iterations, scheme.verifier().radius(),
                   static_cast<double>(2 * flips) / n, mutate);
}

/// Shared churn schedule: iteration it removes `churn` pseudo-random
/// existing edges and re-adds the ones removed in iteration it-1.
auto make_churn_mutator(int churn) {
  auto pick = [](std::mt19937& rng, const Graph& host, int count,
                 std::vector<std::pair<int, int>>* out) {
    for (int i = 0; i < count && host.m() > 1; ++i) {
      std::uniform_int_distribution<int> edge(0, host.m() - 1);
      const int e = edge(rng);
      out->emplace_back(host.edge_u(e), host.edge_v(e));
    }
  };
  auto removed = std::make_shared<std::vector<std::pair<int, int>>>();
  return [pick, churn, removed](int it, const Graph& host, const Proof&,
                                MutationBatch& batch) {
    if (it == 0) removed->clear();  // the loop replays once per engine
    for (const auto& [u, v] : *removed) batch.add_edge(u, v);
    removed->clear();
    std::mt19937 rng(static_cast<std::uint32_t>(7919 * it + 13));
    std::vector<std::pair<int, int>> picks;
    pick(rng, host, churn, &picks);
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    for (const auto& [u, v] : picks) {
      batch.remove_edge(u, v);
      removed->emplace_back(u, v);
    }
  };
}

LoopTiming edge_churn_workload(int n, int iterations) {
  const schemes::BipartiteScheme scheme;
  const int side = std::max(3, static_cast<int>(std::lround(std::sqrt(n))));
  const Graph g = gen::grid(side, side);
  const Proof honest = *scheme.prove(g);
  const int churn = std::max(1, g.n() / 400);

  LoopTiming t = time_loop("attack-loop-edge-churn", g, honest,
                           scheme.verifier(), iterations,
                           scheme.verifier().radius(),
                           static_cast<double>(2 * churn) / g.n(),
                           make_churn_mutator(churn));
  return t;
}

/// Radius-2 views, O(deg) verdicts: 1-bit 2-colouring checked on the
/// centre's incident edges only.  Shared by both r2 workloads so they
/// measure the same predicate.
const LambdaVerifier& two_hop_bipartite_verifier() {
  static const LambdaVerifier verifier(2, [](const View& v) {
    const BitString& mine = v.proof_of(v.center);
    if (mine.size() != 1) return false;
    for (const HalfEdge& h : v.ball.neighbors(v.center)) {
      const BitString& other = v.proof_of(h.to);
      if (other.size() != 1 || other.bit(0) == mine.bit(0)) return false;
    }
    return true;
  });
  return verifier;
}

LoopTiming edge_relabel_r2_workload(int n, int iterations) {
  // Label churn under the radius-2 verifier: every iteration rewrites the
  // labels of ~0.5% of the edges (think weights/capacities flapping while
  // the topology holds still — the dominant churn in serving systems, and
  // exactly what MatchingMaintainer's matched-bit repairs look like).  An
  // edge relabel never moves any ball frontier, so the patched path
  // rewrites two words per containing view and re-verifies only views that
  // actually CONTAIN the edge, where the PR 3 path re-extracted every ball
  // containing either endpoint.  This is the patching flagship row.
  const schemes::BipartiteScheme scheme;
  const int side = std::max(3, static_cast<int>(std::lround(std::sqrt(n))));
  const Graph g = gen::grid(side, side);
  const Proof honest = *scheme.prove(g);
  const int churn = std::max(1, g.m() / 400);
  auto mutate = [churn](int it, const Graph& host, const Proof&,
                        MutationBatch& batch) {
    std::mt19937 rng(static_cast<std::uint32_t>(104729 * it + 31));
    for (int i = 0; i < churn; ++i) {
      std::uniform_int_distribution<int> edge(0, host.m() - 1);
      const int e = edge(rng);
      batch.set_edge_label(host.edge_u(e), host.edge_v(e), rng() % 2);
    }
  };
  const LambdaVerifier& two_hop = two_hop_bipartite_verifier();
  return time_loop("attack-loop-edge-relabel-r2", g, honest, two_hop,
                   iterations, two_hop.radius(),
                   static_cast<double>(2 * churn) / g.n(), mutate);
}

LoopTiming edge_churn_r2_workload(int n, int iterations) {
  // The same grid churn under a RADIUS-2 verifier: views are the 13-node
  // diamond balls, so extraction — not verdict evaluation — dominates the
  // dirty-ball path.  This is the regime view patching targets: interior
  // edges splice in place and only frontier-crossing changes re-extract.
  // (At radius 1 on a triangle-free grid every dirty ball IS an endpoint
  // ball whose membership changes, so there is nothing to patch — the r1
  // row above stays as the continuity baseline.)
  const schemes::BipartiteScheme scheme;
  const int side = std::max(3, static_cast<int>(std::lround(std::sqrt(n))));
  const Graph g = gen::grid(side, side);
  const Proof honest = *scheme.prove(g);
  const int churn = std::max(1, g.n() / 200);
  const LambdaVerifier& two_hop = two_hop_bipartite_verifier();
  return time_loop("attack-loop-edge-churn-r2", g, honest, two_hop,
                   iterations, two_hop.radius(),
                   static_cast<double>(2 * churn) / g.n(),
                   make_churn_mutator(churn));
}

double time_exhaustive(ExecutionEngine& engine, const Graph& g,
                       const LocalVerifier& verifier) {
  const auto start = std::chrono::steady_clock::now();
  const bool found = exists_accepted_proof(g, verifier, 1, engine);
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  return found ? -1.0 : elapsed.count();  // odd cycle: must come up empty
}

LoopTiming exhaustive_workload() {
  // Odd cycle, 1-bit 2-colouring verifier: the full 3^n odometer runs dry.
  const int n = 11;
  const Graph g = gen::cycle(n);
  static const LambdaVerifier two_col(1, [](const View& v) {
    const BitString& mine = v.proof_of(v.center);
    if (mine.size() != 1) return false;
    for (const HalfEdge& h : v.ball.neighbors(v.center)) {
      const BitString& other = v.proof_of(h.to);
      if (other.size() != 1 || other.bit(0) == mine.bit(0)) return false;
    }
    return true;
  });
  LoopTiming t;
  t.name = "exhaustive-proof-search";
  t.n = n;
  t.m = g.m();
  t.iterations = 177147;  // 3^11 candidates
  t.mutated_fraction = 2.0 / n;
  DirectEngine uncached({/*cache_views=*/false});
  t.direct_ms = time_exhaustive(uncached, g, two_col);
  DirectEngine cached;
  t.direct_cached_ms = time_exhaustive(cached, g, two_col);
  ParallelEngine parallel;
  t.parallel_ms = time_exhaustive(parallel, g, two_col);
  IncrementalEngine incremental;
  t.incremental_ms = time_exhaustive(incremental, g, two_col);
  IncrementalEngine nopatch({.patch_views = false});
  t.incremental_nopatch_ms = time_exhaustive(nopatch, g, two_col);
  IncrementalEngine noverify({.verify_state = false});
  t.incremental_noverify_ms = time_exhaustive(noverify, g, two_col);
  t.checksum_direct = 0;
  return t;
}

void print_json(std::FILE* out, const std::vector<LoopTiming>& rows) {
  bench::json_header(out, "bench/incremental_compare",
                     static_cast<int>(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LoopTiming& t = rows[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"n\": %d, \"m\": %d, \"iterations\": %d,\n"
        "     \"mutated_fraction_per_iteration\": %.4f,\n"
        "     \"timings_ms\": {\"direct\": %.3f, \"direct_cached\": %.3f, "
        "\"parallel\": %.3f, \"incremental\": %.3f, "
        "\"incremental_nopatch\": %.3f, "
        "\"incremental_noverify\": %.3f},\n",
        t.name.c_str(), t.n, t.m, t.iterations, t.mutated_fraction,
        t.direct_ms, t.direct_cached_ms, t.parallel_ms, t.incremental_ms,
        t.incremental_nopatch_ms, t.incremental_noverify_ms);
    std::fprintf(
        out,
        "     \"speedup_vs_direct\": {\"direct_cached\": %.2f, "
        "\"parallel\": %.2f, \"incremental\": %.2f, "
        "\"incremental_nopatch\": %.2f, "
        "\"incremental_noverify\": %.2f},\n"
        "     \"incremental_iter_us\": {\"p50\": %.1f, \"p90\": %.1f, "
        "\"p99\": %.1f},\n"
        "     \"patching_speedup\": %.2f}%s\n",
        t.direct_ms / t.direct_cached_ms, t.direct_ms / t.parallel_ms,
        t.direct_ms / t.incremental_ms,
        t.direct_ms / t.incremental_nopatch_ms,
        t.direct_ms / t.incremental_noverify_ms,
        t.incremental_iter_p50_us, t.incremental_iter_p90_us,
        t.incremental_iter_p99_us,
        t.incremental_nopatch_ms / t.incremental_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace
}  // namespace lcp

int main(int argc, char** argv) {
  using namespace lcp;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10000;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_incremental.json";

  std::vector<LoopTiming> rows;
  rows.push_back(proof_tamper_workload(n, iterations));
  rows.push_back(edge_churn_workload(n, iterations));
  rows.push_back(edge_churn_r2_workload(n, iterations));
  rows.push_back(edge_relabel_r2_workload(n, iterations));
  rows.push_back(exhaustive_workload());

  std::printf("%-26s %8s %6s | %10s %10s %10s %10s %10s %10s\n", "workload",
              "n", "iters", "direct", "cached", "parallel", "increm",
              "nopatch", "noverify");
  for (const LoopTiming& t : rows) {
    std::printf(
        "%-26s %8d %6d | %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms\n",
        t.name.c_str(), t.n, t.iterations, t.direct_ms, t.direct_cached_ms,
        t.parallel_ms, t.incremental_ms, t.incremental_nopatch_ms,
        t.incremental_noverify_ms);
    std::printf("%-26s speedup vs direct: cached %.2fx, parallel %.2fx, "
                "incremental %.2fx (nopatch %.2fx, noverify %.2fx); "
                "patching %.2fx over nopatch; iter p50/p99 %.0f/%.0fus\n",
                "", t.direct_ms / t.direct_cached_ms,
                t.direct_ms / t.parallel_ms, t.direct_ms / t.incremental_ms,
                t.direct_ms / t.incremental_nopatch_ms,
                t.direct_ms / t.incremental_noverify_ms,
                t.incremental_nopatch_ms / t.incremental_ms,
                t.incremental_iter_p50_us, t.incremental_iter_p99_us);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  print_json(out, rows);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  // Negative timings mean an engine disagreed with the direct checksum.
  for (const LoopTiming& t : rows) {
    if (t.direct_ms < 0 || t.direct_cached_ms < 0 || t.parallel_ms < 0 ||
        t.incremental_ms < 0 || t.incremental_nopatch_ms < 0 ||
        t.incremental_noverify_ms < 0) {
      std::fprintf(stderr, "verdict mismatch in workload %s\n",
                   t.name.c_str());
      return 1;
    }
  }
  return 0;
}
