// Section 5.4 lower bounds, executed: the gluing adversary against the
// four problem families on cycles, sweeping the per-field proof budget b
// and the cycle length n.  The attack succeeds exactly while 2^b < n
// (colour collisions exist) and the honest schemes (b = 0) always resist:
// the empirical Theta(log n) threshold.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "lower/gluing.hpp"

namespace lcp::lower {
namespace {

void sweep_problem(const char* name, GluingProblem (*make)(int),
                   const std::vector<int>& sizes) {
  std::printf("%-24s", name);
  for (int n : sizes) std::printf(" n=%-5d", n);
  std::printf("\n");
  for (int b : {1, 2, 3, 4, 5, 6, 7, 8}) {
    std::printf("  b = %-2d fooled:       ", b);
    for (int n : sizes) {
      const GluingOutcome o = run_gluing_attack(make(b), n, n, 6);
      std::printf(" %-7s", o.fooled() ? "yes" : "no");
    }
    std::printf("\n");
  }
  std::printf("  honest (Theta(log n)):");
  for (int n : sizes) {
    const GluingOutcome o = run_gluing_attack(make(0), n, n, 6);
    std::printf(" %-7s", o.fooled() ? "YES(!)" : "no");
  }
  std::printf("\n\n");
}

}  // namespace
}  // namespace lcp::lower

int main() {
  lcp::bench::heading(
      "Section 5.4 - Omega(log n) lower bounds via cycle gluing");
  std::printf(
      "Attack succeeds ('yes') when a b-bit-per-field scheme accepts a glued\n"
      "no-instance; expected boundary: fooled while 2^b < n, resistant "
      "above.\n\n");
  const std::vector<int> sizes{33, 65, 129};
  lcp::lower::sweep_problem("leader election",
                            lcp::lower::leader_election_problem, sizes);
  lcp::lower::sweep_problem("spanning tree",
                            lcp::lower::spanning_tree_problem, sizes);
  lcp::lower::sweep_problem("odd n / non-bipartite",
                            lcp::lower::odd_n_problem, sizes);
  lcp::lower::sweep_problem("max matching on cycles",
                            lcp::lower::max_matching_problem, sizes);
  lcp::bench::rule();
  std::printf(
      "Reading the table: each column's yes->no flip sits at b ~ log2(n),\n"
      "matching the paper's Theta(log n) proof-size threshold.\n");
  return 0;
}
