// Multi-client interleaving fuzz for the session server (run under TSan
// in CI).  N client threads hammer M shared sessions with label-flip
// batches; the server admits, coalesces, and applies them on its lanes.
// The anchor: batch concatenation preserves recording order, so whatever
// coalescing the race produced, replaying the *recorded* coalesced batch
// sequence single-threaded through a fresh VerificationSession must
// reproduce every per-apply verdict, generation, and fingerprint
// bit-identically — and the per-ticket records the clients polled must
// match that replay.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/delta.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "server/session_server.hpp"

namespace lcp::server {
namespace {

constexpr std::uint64_t kGraphId = 7;
constexpr int kThreads = 4;
constexpr int kSessions = 8;
constexpr int kBatchesPerThread = 120;

/// A label-flip batch: node labels and 1-bit proof labels at seeded
/// positions.  Always applies cleanly (valid indices, no structure), so
/// any coalescing order is exercised without tripping the tracker.
MutationBatch random_batch(std::mt19937& rng, int nodes) {
  MutationBatch batch;
  std::uniform_int_distribution<int> node(0, nodes - 1);
  std::uniform_int_distribution<int> ops(1, 4);
  std::uniform_int_distribution<std::uint64_t> label(0, 1023);
  const int count = ops(rng);
  for (int i = 0; i < count; ++i) {
    if (rng() % 2 == 0) {
      batch.set_node_label(node(rng), label(rng));
    } else {
      BitString bits;
      bits.append_bit((rng() & 1) != 0);
      batch.set_proof_label(node(rng), bits);
    }
  }
  return batch;
}

TEST(ServerFuzz, ConcurrentClientsMatchSingleThreadedReplay) {
  SessionServerOptions options;
  options.lanes = 4;
  options.max_pending_per_session = 32;
  options.verdict_history = 1 << 20;  // keep every ticket pollable
  options.record_applied_batches = true;
  SessionServer server(options);
  const Graph base = gen::grid(20, 20);
  server.submit_graph(kGraphId, base);

  std::vector<std::uint64_t> sessions;
  for (int s = 0; s < kSessions; ++s) {
    const OpenResult opened =
        server.open_session(kGraphId, "bipartite", "incremental", false);
    ASSERT_TRUE(opened.ok) << opened.error;
    sessions.push_back(opened.session_id);
  }

  // Tickets issued per session, recorded under a mutex as threads race.
  std::map<std::uint64_t, std::vector<std::uint64_t>> tickets;
  std::mutex tickets_mutex;
  std::atomic<std::size_t> overloaded{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(static_cast<std::uint32_t>(0xfu + t));
      const int nodes = base.n();
      for (int i = 0; i < kBatchesPerThread; ++i) {
        const std::uint64_t session =
            sessions[rng() % sessions.size()];
        std::uint64_t ticket = 0;
        const AdmitStatus status = server.apply_deltas(
            session, random_batch(rng, nodes), &ticket, nullptr);
        if (status == AdmitStatus::kOverloaded) {
          // Dropped under backpressure: simply not part of the run.
          overloaded.fetch_add(1);
          continue;
        }
        ASSERT_EQ(status, AdmitStatus::kAccepted);
        const std::lock_guard<std::mutex> lock(tickets_mutex);
        tickets[session].push_back(ticket);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();

  std::size_t total_applies = 0;
  std::size_t total_admitted = 0;
  for (const std::uint64_t session : sessions) {
    // The coalesced batches this session actually applied, in order.
    const std::vector<MutationBatch> applied =
        server.applied_batches(session);
    total_applies += applied.size();

    // Replay them single-threaded through a fresh facade session.
    VerificationSession::Builder builder(base);
    builder.scheme("bipartite");
    builder.engine("incremental");
    VerificationSession replay = builder.build();
    struct ApplyMark {
      bool all_accept;
      std::size_t rejecting;
      std::uint64_t fingerprint;
    };
    // Keyed by post-apply tracker generation: an apply whose reprove
    // patched proof labels advances the generation by more than one, and
    // the server's VerdictRecord carries the same post-apply value.
    std::map<std::uint64_t, ApplyMark> marks;
    for (const MutationBatch& batch : applied) {
      const RunResult run = replay.apply(batch);
      marks.emplace(replay.tracker().generation(),
                    ApplyMark{run.all_accept, run.rejecting.size(),
                              replay.tracker().state_fingerprint()});
    }

    // Every admitted ticket resolved, and its verdict names one of the
    // replayed applies — with the identical verdict markers.
    for (const std::uint64_t ticket : tickets[session]) {
      VerdictRecord record;
      ASSERT_EQ(server.poll(session, ticket, &record), PollStatus::kDone)
          << "session " << session << " ticket " << ticket;
      EXPECT_FALSE(record.failed);
      const auto mark = marks.find(record.generation);
      ASSERT_NE(mark, marks.end())
          << "verdict generation " << record.generation
          << " matches no replayed apply";
      EXPECT_EQ(record.all_accept, mark->second.all_accept);
      EXPECT_EQ(record.rejecting, mark->second.rejecting);
      EXPECT_EQ(record.fingerprint, mark->second.fingerprint);
    }
    total_admitted += tickets[session].size();

    // The coalesced group sizes partition the admitted tickets exactly:
    // summing each apply's `coalesced` once must give the ticket count.
    std::map<std::uint64_t, std::uint32_t> group_size;
    for (const std::uint64_t ticket : tickets[session]) {
      VerdictRecord record;
      ASSERT_EQ(server.poll(session, ticket, &record), PollStatus::kDone);
      group_size[record.generation] = record.coalesced;
    }
    std::size_t partitioned = 0;
    for (const auto& [generation, size] : group_size) {
      partitioned += size;
    }
    EXPECT_EQ(partitioned, tickets[session].size());
    EXPECT_EQ(group_size.size(), applied.size());

    // The final state the server reports matches the replay's end state.
    SessionSnapshot snapshot;
    ASSERT_TRUE(server.get_stats(session, &snapshot));
    EXPECT_EQ(snapshot.generation, replay.tracker().generation());
    EXPECT_EQ(snapshot.fingerprint, replay.tracker().state_fingerprint());
  }

  // Conservation: every admitted batch was applied exactly once (possibly
  // merged), nothing was lost or double-applied.
  EXPECT_LE(total_applies, total_admitted);
  EXPECT_EQ(total_admitted + overloaded.load(),
            static_cast<std::size_t>(kThreads) * kBatchesPerThread);

  for (const std::uint64_t session : sessions) {
    EXPECT_TRUE(server.close_session(session));
  }
  EXPECT_EQ(server.session_count(), 0u);
}

}  // namespace
}  // namespace lcp::server
