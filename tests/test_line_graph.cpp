// Line-graph recognition and the self-derived Beineke forbidden set.
#include <gtest/gtest.h>

#include "algo/isomorphism.hpp"
#include "algo/line_graph.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"

namespace lcp {
namespace {

TEST(LineGraph, LineGraphsOfSmallGraphsPassKrausz) {
  // L(anything) must be a line graph by definition.
  for (std::uint32_t seed = 0; seed < 15; ++seed) {
    const Graph base = gen::random_graph(6, 0.4, seed);
    const Graph lg = line_graph_of(base);
    EXPECT_TRUE(is_line_graph_krausz(lg)) << "seed " << seed;
  }
}

TEST(LineGraph, ClawIsNotALineGraph) {
  EXPECT_FALSE(is_line_graph_krausz(gen::star(4)));  // K_{1,3}
}

TEST(LineGraph, CyclesAndCompleteGraphsAreLineGraphs) {
  EXPECT_TRUE(is_line_graph_krausz(gen::cycle(7)));   // L(C7) = C7
  EXPECT_TRUE(is_line_graph_krausz(gen::complete(3)));
  EXPECT_TRUE(is_line_graph_krausz(gen::path(5)));    // L(P6) = P5
}

TEST(LineGraph, BeinekeDerivationFindsExactlyNineGraphs) {
  const auto& forbidden = beineke_forbidden();
  EXPECT_EQ(forbidden.size(), 9u);
  // Known size distribution: one graph on 4 nodes (the claw), two on 5
  // nodes, six on 6 nodes.
  int by_size[7] = {0, 0, 0, 0, 0, 0, 0};
  for (const Graph& h : forbidden) {
    ASSERT_LE(h.n(), 6);
    ++by_size[h.n()];
  }
  EXPECT_EQ(by_size[4], 1);
  EXPECT_EQ(by_size[5], 2);
  EXPECT_EQ(by_size[6], 6);
}

TEST(LineGraph, ClawIsAmongTheNine) {
  const Graph claw = gen::star(4);
  bool found = false;
  for (const Graph& h : beineke_forbidden()) {
    if (h.n() == 4 && are_isomorphic(h, claw)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LineGraph, ForbiddenGraphsAreMinimal) {
  // Every one-node-deleted subgraph of a forbidden graph is a line graph.
  for (const Graph& h : beineke_forbidden()) {
    EXPECT_FALSE(is_line_graph_krausz(h));
    for (int drop = 0; drop < h.n(); ++drop) {
      std::vector<int> keep;
      for (int v = 0; v < h.n(); ++v) {
        if (v != drop) keep.push_back(v);
      }
      EXPECT_TRUE(is_line_graph_krausz(induced_subgraph(h, keep)));
    }
  }
}

TEST(LineGraph, ObstructionCheckAgreesWithKrausz) {
  // Beineke's theorem itself, verified empirically on all 7-node graphs
  // from a random sample.
  for (std::uint32_t seed = 0; seed < 60; ++seed) {
    const Graph g = gen::random_graph(7, 0.35, seed);
    EXPECT_EQ(is_line_graph_krausz(g), !contains_beineke_obstruction(g))
        << "seed " << seed;
  }
}

TEST(LineGraph, VerifierRadiusIsSmallConstant) {
  EXPECT_GE(beineke_radius(), 1);
  EXPECT_LE(beineke_radius(), 3);
}

TEST(LineGraph, LineGraphOfPetersenIsKneserLike) {
  const Graph lg = line_graph_of(gen::petersen());
  EXPECT_EQ(lg.n(), 15);
  // L(cubic graph) is 4-regular.
  for (int v = 0; v < lg.n(); ++v) EXPECT_EQ(lg.degree(v), 4);
  EXPECT_TRUE(is_line_graph_krausz(lg));
}

}  // namespace
}  // namespace lcp
