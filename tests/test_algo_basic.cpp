// Traversal, bipartiteness, odd cycles, connectivity utilities.
#include <gtest/gtest.h>

#include "algo/bipartite.hpp"
#include "algo/coloring.hpp"
#include "algo/traversal.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

TEST(Traversal, ComponentsOnUnion) {
  const Graph g = gen::disjoint_union(gen::cycle(3), gen::path(4));
  const auto comp = components(g);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[6]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Traversal, IsConnected) {
  EXPECT_TRUE(is_connected(gen::petersen()));
  EXPECT_FALSE(is_connected(gen::disjoint_union(gen::cycle(3), gen::cycle(3))));
  EXPECT_TRUE(is_connected(Graph{}));
}

TEST(Traversal, BfsTreeParentsAndDists) {
  const Graph g = gen::path(6);
  const RootedTree tree = bfs_tree(g, 0);
  EXPECT_EQ(tree.parent[0], 0);
  EXPECT_EQ(tree.parent[3], 2);
  EXPECT_EQ(tree.dist[5], 5);
}

TEST(Traversal, SubtreeSizesOnStar) {
  const Graph g = gen::star(6);
  const RootedTree tree = bfs_tree(g, 0);
  const auto sizes = tree.subtree_sizes();
  EXPECT_EQ(sizes[0], 6);
  for (int v = 1; v < 6; ++v) EXPECT_EQ(sizes[static_cast<std::size_t>(v)], 1);
}

TEST(Traversal, SubtreeSizesSumAlongPath) {
  const Graph g = gen::path(5);
  const RootedTree tree = bfs_tree(g, 0);
  const auto sizes = tree.subtree_sizes();
  EXPECT_EQ(sizes[0], 5);
  EXPECT_EQ(sizes[4], 1);
  EXPECT_EQ(sizes[2], 3);
}

TEST(Traversal, RestrictedTreeIgnoresForbiddenEdges) {
  Graph g = gen::cycle(6);
  // Forbid the closing edge only.
  const int closing = g.edge_index(5, 0);
  auto ok = [closing](int e) { return e != closing; };
  const RootedTree tree = bfs_tree_restricted(g, 0, ok);
  EXPECT_EQ(tree.dist[5], 5);  // must walk the long way
}

TEST(Traversal, ShortestPathEndpoints) {
  const Graph g = gen::grid(3, 3);
  const auto path = shortest_path(g, 0, 8);
  ASSERT_EQ(path.size(), 5u);  // Manhattan distance 4
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(Traversal, ShortestPathUnreachableIsEmpty) {
  const Graph g = gen::disjoint_union(gen::cycle(3), gen::cycle(3));
  EXPECT_TRUE(shortest_path(g, 0, 4).empty());
}

TEST(Bipartite, EvenCyclesYes) {
  for (int n = 4; n <= 12; n += 2) {
    EXPECT_TRUE(is_bipartite(gen::cycle(n))) << n;
  }
}

TEST(Bipartite, OddCyclesNo) {
  for (int n = 3; n <= 11; n += 2) {
    EXPECT_FALSE(is_bipartite(gen::cycle(n))) << n;
  }
}

TEST(Bipartite, TwoColoringIsProper) {
  const Graph g = gen::hypercube(3);
  const auto colors = two_coloring(g);
  ASSERT_TRUE(colors.has_value());
  EXPECT_TRUE(is_proper_coloring(g, *colors));
}

TEST(Bipartite, PetersenIsNotBipartite) {
  EXPECT_FALSE(is_bipartite(gen::petersen()));
}

TEST(Bipartite, OddCycleWitnessIsOddAndClosed) {
  for (int n : {3, 5, 9}) {
    const auto cycle = find_odd_cycle(gen::cycle(n));
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->size() % 2, 1u);
    const Graph g = gen::cycle(n);
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      EXPECT_TRUE(g.has_edge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
    }
  }
}

TEST(Bipartite, OddCycleWitnessOnPetersen) {
  const Graph g = gen::petersen();
  const auto cycle = find_odd_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 5u);  // girth of Petersen
  EXPECT_EQ(cycle->size() % 2, 1u);
  // Simple: all distinct.
  std::vector<int> sorted = *cycle;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Bipartite, NoOddCycleInBipartite) {
  EXPECT_FALSE(find_odd_cycle(gen::grid(3, 4)).has_value());
  EXPECT_FALSE(find_odd_cycle(gen::hypercube(3)).has_value());
}

}  // namespace
}  // namespace lcp
