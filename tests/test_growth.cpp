// The growth-class fitter behind the Table 1 verdicts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/growth.hpp"

namespace lcp {
namespace {

std::vector<std::pair<double, double>> sample(
    const std::vector<double>& xs, double (*f)(double)) {
  std::vector<std::pair<double, double>> out;
  for (double x : xs) out.emplace_back(x, f(x));
  return out;
}

const std::vector<double> kSweep{8, 16, 32, 64, 128};

TEST(Growth, Zero) {
  EXPECT_EQ(classify_growth(sample(kSweep, [](double) { return 0.0; })),
            GrowthClass::kZero);
}

TEST(Growth, ConstantWithJitter) {
  EXPECT_EQ(classify_growth({{8, 5}, {16, 5}, {32, 6}, {64, 5}, {128, 7}}),
            GrowthClass::kConstant);
}

TEST(Growth, PureLog) {
  EXPECT_EQ(classify_growth(sample(kSweep,
                                   [](double n) { return std::log2(n); })),
            GrowthClass::kLogarithmic);
}

TEST(Growth, LogWithLargeOffset) {
  // The shape that broke ratio-based fitting: 30 + 4 log n.
  EXPECT_EQ(classify_growth(sample(
                kSweep, [](double n) { return 30 + 4 * std::log2(n); })),
            GrowthClass::kLogarithmic);
}

TEST(Growth, LinearWithOffset) {
  EXPECT_EQ(classify_growth(sample(kSweep,
                                   [](double n) { return 20 + 2 * n; })),
            GrowthClass::kLinear);
}

TEST(Growth, QuadraticWithLinearNoise) {
  EXPECT_EQ(classify_growth(sample(
                kSweep, [](double n) { return n * n + 6 * n + 40; })),
            GrowthClass::kQuadratic);
}

TEST(Growth, QuadraticOnSmallRange) {
  // The symmetric-graph sweep: n in 6..26 only.
  EXPECT_EQ(classify_growth(sample({6, 10, 14, 20, 26},
                                   [](double n) { return n * n + 5 * n + 46; })),
            GrowthClass::kQuadratic);
}

TEST(Growth, ExponentialIsOther) {
  EXPECT_EQ(classify_growth(sample({4, 6, 8, 10, 12},
                                   [](double n) { return std::pow(2.0, n); })),
            GrowthClass::kOther);
}

TEST(Growth, TooFewSamples) {
  EXPECT_EQ(classify_growth({{8, 3}}), GrowthClass::kOther);
  EXPECT_EQ(classify_growth({}), GrowthClass::kOther);
}

TEST(Growth, ToStringCoversAllClasses) {
  EXPECT_EQ(to_string(GrowthClass::kZero), "0");
  EXPECT_EQ(to_string(GrowthClass::kConstant), "Theta(1)");
  EXPECT_EQ(to_string(GrowthClass::kLogarithmic), "Theta(log n)");
  EXPECT_EQ(to_string(GrowthClass::kLinear), "Theta(n)");
  EXPECT_EQ(to_string(GrowthClass::kQuadratic), "Theta(n^2)");
  EXPECT_EQ(to_string(GrowthClass::kOther), "other");
}

}  // namespace
}  // namespace lcp
