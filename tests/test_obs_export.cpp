// Live metric export: Prometheus text rendering of snapshots and the
// sliding-window RateSampler (counter/gauge deltas per second, histogram
// p99 drift).  The background-thread start/stop path runs under TSan in
// CI; the sampler must never register anything back into the registry it
// samples (the snapshot-under-lock contract).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace lcp::obs {
namespace {

TEST(PrometheusText, RendersCountersGaugesAndSummaries) {
  MetricRegistry registry;
  registry.counter("engine.direct.sweeps").add(5);
  registry.gauge("store.ball.hit_rate").set(0.75);
  registry.histogram("session.apply.latency").record_ns(1'000'000);
  registry.histogram("session.apply.latency").record_ns(2'000'000);

  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE lcp_engine_direct_sweeps counter"),
            std::string::npos);
  EXPECT_NE(text.find("lcp_engine_direct_sweeps 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lcp_store_ball_hit_rate gauge"),
            std::string::npos);
  EXPECT_NE(text.find("lcp_store_ball_hit_rate 0.75"), std::string::npos);
  EXPECT_NE(
      text.find("# TYPE lcp_session_apply_latency_seconds summary"),
      std::string::npos);
  EXPECT_NE(text.find("lcp_session_apply_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lcp_session_apply_latency_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("lcp_session_apply_latency_seconds_sum"),
            std::string::npos);
}

TEST(PrometheusText, SanitizesNamesAndHonoursPrefix) {
  MetricRegistry registry;
  registry.counter("layer.comp-x.metric").add(1);
  const std::string text = to_prometheus_text(registry.snapshot(), "app");
  EXPECT_NE(text.find("app_layer_comp_x_metric 1"), std::string::npos);
  EXPECT_EQ(text.find("lcp_"), std::string::npos);
}

TEST(RateSampler, DerivesCounterRatesAcrossTheWindow) {
  MetricRegistry registry;
  Counter& applies = registry.counter("session.batches");
  RateSampler sampler(registry, {.window = 4});

  sampler.sample_now();
  applies.add(30);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.sample_now();

  const RateSampler::Rates rates = sampler.rates();
  ASSERT_GT(rates.window_seconds, 0.0);
  ASSERT_EQ(rates.counters.size(), 1u);
  EXPECT_EQ(rates.counters[0].name, "session.batches");
  // 30 events over the measured window.
  EXPECT_NEAR(rates.counters[0].per_sec * rates.window_seconds, 30.0, 1e-6);
  EXPECT_GT(sampler.rate_of("session.batches"), 0.0);
  EXPECT_EQ(sampler.rate_of("no.such.metric"), 0.0);
}

TEST(RateSampler, MonotoneGaugesRateRegressingGaugesSkipped) {
  MetricRegistry registry;
  Gauge& tally = registry.gauge("session.repaired");  // monotone adapter
  Gauge& depth = registry.gauge("pool.queue_depth");  // true gauge
  RateSampler sampler(registry, {.window = 4});

  tally.set(10);
  depth.set(8);
  sampler.sample_now();
  tally.set(25);
  depth.set(3);  // moved backwards: not a rate
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.sample_now();

  const RateSampler::Rates rates = sampler.rates();
  ASSERT_EQ(rates.gauges.size(), 1u);
  EXPECT_EQ(rates.gauges[0].name, "session.repaired");
  EXPECT_NEAR(rates.gauges[0].per_sec * rates.window_seconds, 15.0, 1e-6);
}

TEST(RateSampler, TracksHistogramP99Drift) {
  MetricRegistry registry;
  LatencyHistogram& hist = registry.histogram("session.phase.verify");
  RateSampler sampler(registry, {.window = 4});

  hist.record_ns(1000);
  sampler.sample_now();
  for (int i = 0; i < 100; ++i) hist.record_ns(1'000'000);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.sample_now();

  const RateSampler::Rates rates = sampler.rates();
  ASSERT_EQ(rates.histograms.size(), 1u);
  EXPECT_EQ(rates.histograms[0].name, "session.phase.verify");
  EXPECT_GT(rates.histograms[0].drift_ns, 0.0);
  EXPECT_GT(rates.histograms[0].p99_ns, rates.histograms[0].prev_p99_ns);
}

TEST(RateSampler, WindowIsBoundedAndRatesSpanOldestToNewest) {
  MetricRegistry registry;
  Counter& c = registry.counter("x.y.z");
  RateSampler sampler(registry, {.window = 3});
  for (int i = 0; i < 10; ++i) {
    c.add(1);
    sampler.sample_now();
  }
  EXPECT_EQ(sampler.sample_count(), 3u);
  const RateSampler::Rates rates = sampler.rates();
  ASSERT_EQ(rates.counters.size(), 1u);
  // Oldest retained sample saw 8 events, newest saw 10: delta is 2.
  EXPECT_NEAR(rates.counters[0].per_sec * rates.window_seconds, 2.0, 1e-6);
}

TEST(RateSampler, EmptyUntilTwoSamples) {
  MetricRegistry registry;
  registry.counter("a.b.c").add(1);
  RateSampler sampler(registry);
  EXPECT_EQ(sampler.rates().window_seconds, 0.0);
  sampler.sample_now();
  EXPECT_EQ(sampler.rates().window_seconds, 0.0);
  EXPECT_EQ(sampler.to_prometheus_text(), "");
}

TEST(RateSampler, RendersRatesAsPrometheusGauges) {
  MetricRegistry registry;
  Counter& c = registry.counter("transport.in-process.bytes");
  registry.histogram("session.phase.verify").record_ns(500);
  RateSampler sampler(registry, {.window = 4});
  sampler.sample_now();
  c.add(1024);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.sample_now();

  const std::string text = sampler.to_prometheus_text();
  EXPECT_NE(
      text.find(
          "# TYPE lcp_rate_transport_in_process_bytes_per_sec gauge"),
      std::string::npos);
  EXPECT_NE(text.find("lcp_p99_drift_session_phase_verify_seconds"),
            std::string::npos);
}

TEST(RateSampler, BackgroundThreadStartsStopsAndSamples) {
  MetricRegistry registry;
  Counter& c = registry.counter("bg.ticks");
  RateSampler sampler(
      registry,
      {.interval = std::chrono::milliseconds(5), .window = 8,
       .start_thread = true});
  EXPECT_TRUE(sampler.running());
  for (int i = 0; i < 20; ++i) {
    c.add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.sample_count(), 2u);
  // Re-startable after stop; the destructor stops it again.
  sampler.start();
  EXPECT_TRUE(sampler.running());
}

}  // namespace
}  // namespace lcp::obs
