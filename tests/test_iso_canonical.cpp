// Isomorphism, automorphisms, canonical forms (Section 6 machinery).
#include <gtest/gtest.h>

#include "algo/canonical.hpp"
#include "algo/isomorphism.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

TEST(Isomorphism, ShuffledIdsAreIsomorphic) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const Graph g = gen::random_graph(8, 0.4, seed);
    const Graph h = gen::shuffle_ids(g, seed + 100);
    EXPECT_TRUE(are_isomorphic(g, h));
  }
}

TEST(Isomorphism, DifferentDegreeSequencesRejectedFast) {
  EXPECT_FALSE(are_isomorphic(gen::cycle(6), gen::path(6)));
  EXPECT_FALSE(are_isomorphic(gen::star(5), gen::cycle(5)));
}

TEST(Isomorphism, C6VersusTwoTriangles) {
  const Graph c6 = gen::cycle(6);
  const Graph two_triangles =
      gen::disjoint_union(gen::cycle(3), gen::cycle(3));
  // Same degree sequence, not isomorphic.
  EXPECT_FALSE(are_isomorphic(c6, two_triangles));
}

TEST(Isomorphism, FindIsomorphismIsAValidMap) {
  const Graph g = gen::petersen();
  const Graph h = gen::shuffle_ids(g, 42);
  const auto map = find_isomorphism(g, h);
  ASSERT_TRUE(map.has_value());
  for (int u = 0; u < g.n(); ++u) {
    for (int v = u + 1; v < g.n(); ++v) {
      EXPECT_EQ(g.has_edge(u, v),
                h.has_edge((*map)[static_cast<std::size_t>(u)],
                           (*map)[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(Automorphism, CycleIsSymmetric) {
  EXPECT_TRUE(has_nontrivial_automorphism(gen::cycle(5)));
  EXPECT_TRUE(has_nontrivial_automorphism(gen::complete(4)));
  EXPECT_TRUE(has_nontrivial_automorphism(gen::petersen()));
}

TEST(Automorphism, SmallestAsymmetricGraphHasSixNodes) {
  // Known: every connected simple graph on 2..5 nodes is symmetric.
  for (int n = 2; n <= 5; ++n) {
    for (std::uint32_t seed = 0; seed < 30; ++seed) {
      const Graph g = gen::random_connected(n, 0.4, seed);
      EXPECT_TRUE(has_nontrivial_automorphism(g)) << n << " " << seed;
    }
  }
}

TEST(Automorphism, AKnownAsymmetricSixNodeGraph) {
  // Path 1-2-3-4-5 plus a pendant on node 2 and the edge 3-5... build the
  // classic asymmetric tree on 7 nodes instead: distinct limb lengths.
  // Spider with legs of lengths 1, 2, 3 from a hub (7 nodes, asymmetric).
  Graph g;
  for (int i = 1; i <= 7; ++i) g.add_node(static_cast<NodeId>(i));
  g.add_edge(0, 1);              // leg A: 1
  g.add_edge(0, 2);
  g.add_edge(2, 3);              // leg B: 2
  g.add_edge(0, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);              // leg C: 3
  EXPECT_FALSE(has_nontrivial_automorphism(g));
}

TEST(Automorphism, FixpointFreeOnEvenCycleOnly) {
  EXPECT_TRUE(has_fixpoint_free_automorphism(gen::cycle(6)));
  EXPECT_TRUE(has_fixpoint_free_automorphism(gen::cycle(5)));  // rotation
  EXPECT_FALSE(has_fixpoint_free_automorphism(gen::star(4)));  // hub fixed
}

TEST(Automorphism, AllAutomorphismsGroupSizes) {
  EXPECT_EQ(all_automorphisms(gen::complete(4)).size(), 24u);  // S4
  EXPECT_EQ(all_automorphisms(gen::cycle(5)).size(), 10u);     // dihedral
  EXPECT_EQ(all_automorphisms(gen::path(3)).size(), 2u);
}

TEST(InducedSubgraph, ClawInStarButNotInCycle) {
  const Graph claw = gen::star(4);
  EXPECT_TRUE(has_induced_subgraph(gen::star(7), claw));
  EXPECT_FALSE(has_induced_subgraph(gen::cycle(8), claw));
}

TEST(InducedSubgraph, InducedVersusSubgraphDistinction) {
  // C4 contains P3 induced; K4 contains P3 as a subgraph but NOT induced.
  const Graph p3 = gen::path(3);
  EXPECT_TRUE(has_induced_subgraph(gen::cycle(4), p3));
  EXPECT_FALSE(has_induced_subgraph(gen::complete(4), p3));
}

TEST(Canonical, KeyInvariantUnderShuffle) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const Graph g = gen::random_graph(7, 0.4, seed);
    const Graph h = gen::shuffle_ids(g, seed * 7 + 1);
    EXPECT_EQ(canonical_key(g), canonical_key(h));
  }
}

TEST(Canonical, KeySeparatesNonIsomorphic) {
  EXPECT_NE(canonical_key(gen::cycle(6)),
            canonical_key(gen::disjoint_union(gen::cycle(3), gen::cycle(3))));
  EXPECT_NE(canonical_key(gen::path(5)), canonical_key(gen::star(5)));
}

TEST(Canonical, FormIsIsomorphicCopyWithShiftedIds) {
  const Graph g = gen::random_graph(6, 0.5, 3);
  const Graph c = canonical_form(g, 10);
  EXPECT_TRUE(are_isomorphic(g, c));
  EXPECT_EQ(c.id(0), 11u);
  EXPECT_EQ(c.id(c.n() - 1), 10u + static_cast<NodeId>(c.n()));
}

TEST(Canonical, FormIsIdempotentAcrossIsomorphs) {
  const Graph g = gen::random_graph(6, 0.5, 9);
  const Graph h = gen::shuffle_ids(g, 77);
  const Graph cg = canonical_form(g, 0);
  const Graph ch = canonical_form(h, 0);
  ASSERT_EQ(cg.n(), ch.n());
  ASSERT_EQ(cg.m(), ch.m());
  for (int u = 0; u < cg.n(); ++u) {
    for (int v = u + 1; v < cg.n(); ++v) {
      EXPECT_EQ(cg.has_edge(u, v), ch.has_edge(u, v));
    }
  }
}

}  // namespace
}  // namespace lcp
