// Ablation study: every field of the spanning-tree certificate is
// load-bearing.  For each field we mount the *best consistent lie* an
// adversary could tell through that field alone and show some node
// catches it — plus a positive control per graph.
//
// (Section 7.2 coda: the strong/weak distinction.  Our problem schemes
// certify whatever solution the input carries; the last test shows the
// leader-election proof size does not depend on which leader was chosen,
// so the strong and weak complexities coincide here, as the paper notes.)
#include <gtest/gtest.h>

#include "algo/traversal.hpp"
#include "core/certificates.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

using schemes::kLeaderFlag;
using schemes::LeaderElectionScheme;

Graph leader_graph(int which, int leader) {
  Graph g;
  switch (which) {
    case 0: g = gen::cycle(9); break;
    case 1: g = gen::random_tree(10, 3); break;
    case 2: g = gen::random_connected(11, 0.3, 5); break;
    default: g = gen::grid(3, 4); break;
  }
  g.set_label(leader % g.n(), kLeaderFlag);
  return g;
}

Proof reencode(const std::vector<TreeCert>& certs) {
  Proof p = Proof::empty(static_cast<int>(certs.size()));
  for (std::size_t v = 0; v < certs.size(); ++v) {
    append_tree_cert(p.labels[v], certs[v]);
  }
  return p;
}

std::vector<TreeCert> honest_certs(const Graph& g) {
  const int leader = *g.find_label(kLeaderFlag);
  return make_tree_cert_labels(g, bfs_tree(g, leader), 0);
}

class CertAblation : public ::testing::TestWithParam<int> {};

TEST_P(CertAblation, PositiveControl) {
  const Graph g = leader_graph(GetParam(), 2);
  const LeaderElectionScheme scheme;
  EXPECT_TRUE(
      default_engine().run(g, reencode(honest_certs(g)), scheme.verifier()).all_accept);
}

TEST_P(CertAblation, DistancesAreLoadBearing) {
  const Graph g = leader_graph(GetParam(), 2);
  auto certs = honest_certs(g);
  // Best consistent lie: shift every distance by one (relative deltas are
  // preserved; only the root anchor can notice).
  for (TreeCert& c : certs) c.dist += 1;
  EXPECT_FALSE(default_engine().run(g, reencode(certs),
                            LeaderElectionScheme().verifier())
                   .all_accept);
}

TEST_P(CertAblation, SubtreeCountersAreLoadBearing) {
  const Graph g = leader_graph(GetParam(), 2);
  auto certs = honest_certs(g);
  // Claim one node extra everywhere (and at the root's total, keeping the
  // root-local total == subtree check satisfied).
  for (TreeCert& c : certs) {
    c.subtree += 1;
    c.total += 1;
  }
  EXPECT_FALSE(default_engine().run(g, reencode(certs),
                            LeaderElectionScheme().verifier())
                   .all_accept);
}

TEST_P(CertAblation, RootIdIsLoadBearing) {
  const Graph g = leader_graph(GetParam(), 2);
  auto certs = honest_certs(g);
  // A globally consistent foreign root id — the id of some non-leader
  // node, so it survives the width encoding unchanged.  Without the id
  // check two partitions could each elect their own root.
  const int leader = *g.find_label(kLeaderFlag);
  const NodeId foreign = g.id((leader + 1) % g.n());
  for (TreeCert& c : certs) c.root_id = foreign;
  EXPECT_FALSE(default_engine().run(g, reencode(certs),
                            LeaderElectionScheme().verifier())
                   .all_accept);
}

TEST_P(CertAblation, ParentPortsAreLoadBearing) {
  const Graph g = leader_graph(GetParam(), 2);
  auto certs = honest_certs(g);
  // Rotate every non-root parent port by one: distances or subtree sums
  // stop matching at some node.
  bool changed = false;
  for (int v = 0; v < g.n(); ++v) {
    TreeCert& c = certs[static_cast<std::size_t>(v)];
    if (c.is_root || g.degree(v) < 2) continue;
    c.parent_port = (c.parent_port + 1) % g.degree(v);
    changed = true;
  }
  ASSERT_TRUE(changed);
  EXPECT_FALSE(default_engine().run(g, reencode(certs),
                            LeaderElectionScheme().verifier())
                   .all_accept);
}

TEST_P(CertAblation, RootFlagIsLoadBearing) {
  const Graph g = leader_graph(GetParam(), 2);
  auto certs = honest_certs(g);
  // Drop the root claim everywhere: the leader node's own check fails
  // (leader <=> root), or the dist chain loses its anchor.
  for (TreeCert& c : certs) c.is_root = false;
  EXPECT_FALSE(default_engine().run(g, reencode(certs),
                            LeaderElectionScheme().verifier())
                   .all_accept);
}

INSTANTIATE_TEST_SUITE_P(Graphs, CertAblation, ::testing::Range(0, 4));

TEST(WeakVersusStrong, LeaderChoiceDoesNotAffectProofSize) {
  // Strong schemes certify the adversary's solution; weak schemes may pick
  // a convenient one.  For leader election both cost the same here:
  // proofs for every possible leader have identical size (Section 7.2).
  const LeaderElectionScheme scheme;
  Graph g = gen::random_connected(12, 0.25, 9);
  int reference = -1;
  for (int leader = 0; leader < g.n(); ++leader) {
    for (int v = 0; v < g.n(); ++v) g.set_label(v, 0);
    g.set_label(leader, kLeaderFlag);
    const auto proof = scheme.prove(g);
    ASSERT_TRUE(proof.has_value());
    if (reference < 0) reference = proof->size_bits();
    EXPECT_EQ(proof->size_bits(), reference) << "leader " << leader;
  }
}

}  // namespace
}  // namespace lcp
