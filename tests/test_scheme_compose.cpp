// The scheme algebra (core/compose.hpp) + registry (core/registry.hpp) +
// VerificationSession facade (core/session.hpp) property suite:
//
//   - conjunction(A, B).holds == A.holds && B.holds, the composed prover
//     is accepted iff both components hold, and the composed verdict is
//     bit-identical across DirectEngine and IncrementalEngine on a
//     randomized corpus drawn over the registered schemes;
//   - tampered concatenated proofs are rejected by at least one node;
//   - radius_pad verdicts are bit-identical to the base scheme, honest
//     and tampered alike;
//   - relabel matches the base scheme on the directly relabelled graph;
//   - registry hygiene: duplicate and reserved names are rejected at
//     registration, advertised_size sums across conjunctions and
//     propagates -1;
//   - a conjunction session (Session + ComposedMaintainer) tracks the
//     AND of the component ground truths under churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algo/matching.hpp"
#include "core/checker.hpp"
#include "core/compose.hpp"
#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "core/registry.hpp"
#include "core/session.hpp"
#include "dynamic/composed_maintainer.hpp"
#include "graph/generators.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

void expect_equal(const RunResult& expected, const RunResult& actual,
                  const std::string& context) {
  ASSERT_EQ(expected.all_accept, actual.all_accept) << context;
  ASSERT_EQ(expected.rejecting, actual.rejecting) << context;
}

/// A labelled corpus instance: the generators cover trees (both bipartite
/// and acyclic hold), cycles, and general random graphs, with the
/// leader/matching input labellings some schemes need.
std::vector<Graph> corpus(std::uint32_t seed) {
  std::vector<Graph> out;
  out.push_back(gen::random_tree(12, seed));
  out.push_back(gen::cycle(8));
  out.push_back(gen::cycle(9));
  out.push_back(gen::random_connected(12, 0.2, seed + 1));
  out.push_back(gen::random_graph(12, 0.25, seed + 2));
  for (Graph& g : out) {
    g.set_label(0, schemes::kLeaderFlag);
    const std::vector<bool> matched = greedy_maximal_matching(g);
    for (int e = 0; e < g.m(); ++e) {
      if (matched[static_cast<std::size_t>(e)]) {
        g.set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
      }
    }
  }
  return out;
}

// ------------------------------------------------------------- encoding --

TEST(SchemeCompose, LabelEncodingRoundTrips) {
  std::mt19937 rng(7);
  for (int k = 2; k <= 4; ++k) {
    for (int round = 0; round < 200; ++round) {
      std::vector<BitString> slices(static_cast<std::size_t>(k));
      for (BitString& s : slices) {
        const int len = static_cast<int>(rng() % 20);
        for (int b = 0; b < len; ++b) s.append_bit(rng() % 2 == 1);
      }
      const BitString label = ConjunctionScheme::encode_label(slices);
      std::vector<BitString> decoded;
      ASSERT_TRUE(ConjunctionScheme::decode_label(label, k, &decoded));
      ASSERT_EQ(slices.size(), decoded.size());
      for (int j = 0; j < k; ++j) {
        EXPECT_EQ(slices[static_cast<std::size_t>(j)],
                  decoded[static_cast<std::size_t>(j)]);
      }
    }
  }
  // All-empty encodes to the empty label, and the empty label decodes.
  const BitString empty =
      ConjunctionScheme::encode_label({BitString(), BitString()});
  EXPECT_TRUE(empty.empty());
  std::vector<BitString> decoded;
  EXPECT_TRUE(ConjunctionScheme::decode_label(empty, 2, &decoded));
}

TEST(SchemeCompose, MalformedLabelsAreRejectedNotCrashed) {
  // Truncations and bit appends of a valid label must decode to false;
  // adversarial length fields must not cost super-linear work.
  std::vector<BitString> slices(2);
  slices[0] = BitString::from_string("10110");
  slices[1] = BitString::from_string("001");
  const BitString label = ConjunctionScheme::encode_label(slices);
  std::vector<BitString> decoded;

  BitString longer = label;
  longer.append_bit(true);
  EXPECT_FALSE(ConjunctionScheme::decode_label(longer, 2, &decoded));

  BitString truncated;
  for (int i = 0; i + 1 < label.size(); ++i) {
    truncated.append_bit(label.bit(i));
  }
  EXPECT_FALSE(ConjunctionScheme::decode_label(truncated, 2, &decoded));

  // A length field claiming far more payload than exists.
  BitString huge;
  huge.append_uint(40, 6);       // width 40
  huge.append_uint(1u << 20, 40);  // slice 0 "has" 2^20 bits
  huge.append_uint(0, 40);
  huge.append_bit(true);
  EXPECT_FALSE(ConjunctionScheme::decode_label(huge, 2, &decoded));
}

// ------------------------------------------------------------- registry --

TEST(SchemeCompose, RegistryRejectsDuplicatesAndReservedNames) {
  SchemeRegistry r;
  r.add("bip", [] {
    return std::unique_ptr<Scheme>(new schemes::BipartiteScheme());
  });
  EXPECT_THROW(r.add("bip",
                     [] {
                       return std::unique_ptr<Scheme>(
                           new schemes::BipartiteScheme());
                     }),
               std::invalid_argument);
  EXPECT_THROW(r.add("", [] {
                 return std::unique_ptr<Scheme>(
                     new schemes::BipartiteScheme());
               }),
               std::invalid_argument);
  EXPECT_THROW(r.add("a & b",
                     [] {
                       return std::unique_ptr<Scheme>(
                           new schemes::BipartiteScheme());
                     }),
               std::invalid_argument);
  EXPECT_THROW((void)r.make("unknown"), std::invalid_argument);
  EXPECT_THROW((void)r.build("bip & unknown"), std::invalid_argument);
  EXPECT_THROW((void)r.build("bip & "), std::invalid_argument);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.contains("bip"));
  EXPECT_FALSE(r.has_maintainer("bip"));
}

TEST(SchemeCompose, BuiltinRegistryInstantiatesEverything) {
  SchemeRegistry& reg = builtin_registry();
  EXPECT_GE(reg.size(), 15u);
  for (const std::string& name : reg.names()) {
    const auto scheme = reg.make(name);
    ASSERT_NE(scheme, nullptr) << name;
    EXPECT_EQ(scheme->name(), name)
        << "registry key must match the scheme's own name";
    EXPECT_GE(scheme->verifier().radius(), 1) << name;
  }
  for (const char* expected :
       {"leader-election", "bipartite", "maximal-matching", "acyclic",
        "odd-n", "chromatic<=3"}) {
    EXPECT_TRUE(reg.contains(expected)) << expected;
  }
  EXPECT_TRUE(reg.has_maintainer("leader-election"));
  EXPECT_TRUE(reg.has_maintainer("maximal-matching"));
}

TEST(SchemeCompose, AdvertisedSizeSumsAndPropagatesUnknown) {
  SchemeRegistry& reg = builtin_registry();
  const Graph g = gen::cycle(8);
  const auto a = reg.make("bipartite");
  const auto b = reg.make("leader-election");
  const auto conj = reg.build("bipartite & leader-election");
  for (int n : {4, 64, 1024}) {
    EXPECT_EQ(conj->advertised_size(n),
              a->advertised_size(n) + b->advertised_size(n));
  }
  EXPECT_EQ(conj->name(), "bipartite & leader-election");
  (void)g;

  // A component without a closed-form bound poisons the sum to -1.
  class Unbounded final : public Scheme {
   public:
    std::string name() const override { return "unbounded"; }
    bool holds(const Graph&) const override { return true; }
    std::optional<Proof> prove(const Graph& g2) const override {
      return Proof::empty(g2.n());
    }
    const LocalVerifier& verifier() const override { return verifier_; }

   private:
    LambdaVerifier verifier_{1, [](const View&) { return true; }};
  };
  const Unbounded u;
  const auto mixed = conjunction(*a, u);
  EXPECT_EQ(mixed->advertised_size(128), -1);
}

// ---------------------------------------------------- conjunction == AND --

TEST(SchemeCompose, ConjunctionMatchesComponentAndAcrossEngines) {
  SchemeRegistry& reg = builtin_registry();
  const std::vector<std::string> names = reg.names();
  std::mt19937 rng(20260730);
  DirectEngine direct({/*cache_views=*/false});

  int yes_instances = 0;
  for (int round = 0; round < 14; ++round) {
    const std::string& a = names[rng() % names.size()];
    const std::string& b = names[rng() % names.size()];
    if (a == b) continue;
    const auto lhs = reg.make(a);
    const auto rhs = reg.make(b);
    const auto conj = reg.build(a + " & " + b);
    ASSERT_EQ(conj->verifier().radius(),
              std::max(lhs->verifier().radius(), rhs->verifier().radius()))
        << conj->name();

    for (const Graph& g : corpus(static_cast<std::uint32_t>(round + 1))) {
      const bool expected = lhs->holds(g) && rhs->holds(g);
      const std::string context =
          conj->name() + " on n=" + std::to_string(g.n()) + "/m=" +
          std::to_string(g.m());
      ASSERT_EQ(conj->holds(g), expected) << context;

      const auto proof = conj->prove(g);
      if (expected) {
        ++yes_instances;
        ASSERT_TRUE(proof.has_value()) << context;
        // Verdict == AND of the component verdicts on their own proofs.
        ASSERT_TRUE(scheme_accepts_own_proof(*lhs, g, direct)) << context;
        ASSERT_TRUE(scheme_accepts_own_proof(*rhs, g, direct)) << context;
      }
      const Proof p = proof.value_or(Proof::empty(g.n()));
      const RunResult want = direct.run(g, p, conj->verifier());
      ASSERT_EQ(want.all_accept, expected) << context;

      IncrementalEngine incremental;
      expect_equal(want, incremental.run(g, p, conj->verifier()),
                   context + "/incremental");
    }
  }
  EXPECT_GT(yes_instances, 0) << "corpus never exercised completeness";
}

TEST(SchemeCompose, TripleConjunctionStaysFirstClass) {
  SchemeRegistry& reg = builtin_registry();
  const auto conj = reg.build("bipartite & acyclic & even-n");
  DirectEngine direct({/*cache_views=*/false});
  for (std::uint32_t seed = 1; seed <= 4; ++seed) {
    const Graph g = gen::random_tree(11 + static_cast<int>(seed), seed);
    const bool expected = conj->holds(g);
    const auto proof = conj->prove(g);
    const Proof p = proof.value_or(Proof::empty(g.n()));
    EXPECT_EQ(direct.run(g, p, conj->verifier()).all_accept, expected);
  }
}

TEST(SchemeCompose, TamperedConjunctionProofsAreRejected) {
  SchemeRegistry& reg = builtin_registry();
  DirectEngine direct({/*cache_views=*/false});
  std::mt19937 rng(99);
  for (const char* expr :
       {"bipartite & acyclic", "leader-election & maximal-matching"}) {
    const auto conj = reg.build(expr);
    Graph g = gen::random_tree(14, 5);
    g.set_label(0, schemes::kLeaderFlag);
    const std::vector<bool> matched = greedy_maximal_matching(g);
    for (int e = 0; e < g.m(); ++e) {
      if (matched[static_cast<std::size_t>(e)]) {
        g.set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
      }
    }
    ASSERT_TRUE(conj->holds(g)) << expr;
    const auto proof = conj->prove(g);
    ASSERT_TRUE(proof.has_value()) << expr;
    ASSERT_TRUE(direct.run(g, *proof, conj->verifier()).all_accept) << expr;

    for (int v = 0; v < g.n(); ++v) {
      // Breaking the offset-table framing at any node must be caught.
      Proof longer = *proof;
      longer.labels[static_cast<std::size_t>(v)].append_bit(rng() % 2 == 1);
      EXPECT_FALSE(direct.run(g, longer, conj->verifier()).all_accept)
          << expr << " node " << v << " appended bit";

      const BitString& orig = proof->labels[static_cast<std::size_t>(v)];
      if (orig.empty()) continue;
      Proof shorter = *proof;
      BitString cut;
      for (int i = 0; i + 1 < orig.size(); ++i) cut.append_bit(orig.bit(i));
      shorter.labels[static_cast<std::size_t>(v)] = cut;
      EXPECT_FALSE(direct.run(g, shorter, conj->verifier()).all_accept)
          << expr << " node " << v << " truncated";
    }
  }
}

// ------------------------------------------------------------- adapters --

TEST(SchemeCompose, RadiusPadVerdictsBitIdenticalToBase) {
  SchemeRegistry& reg = builtin_registry();
  DirectEngine direct({/*cache_views=*/false});
  std::mt19937 rng(1234);
  for (const char* name : {"bipartite", "acyclic", "leader-election"}) {
    const auto base = reg.make(name);
    const int r = base->verifier().radius();
    EXPECT_THROW((void)radius_pad(*base, r - 1), std::invalid_argument);
    for (const int pad : {r, r + 1, r + 2}) {
      const auto padded = radius_pad(*base, pad);
      ASSERT_EQ(padded->verifier().radius(), pad);
      for (const Graph& g : corpus(11)) {
        const Proof honest =
            base->prove(g).value_or(Proof::empty(g.n()));
        expect_equal(direct.run(g, honest, base->verifier()),
                     direct.run(g, honest, padded->verifier()),
                     std::string(name) + "@r=" + std::to_string(pad));
        for (const Proof& tampered : tampered_variants(honest, 6, rng())) {
          expect_equal(
              direct.run(g, tampered, base->verifier()),
              direct.run(g, tampered, padded->verifier()),
              std::string(name) + "@r=" + std::to_string(pad) + "/tampered");
        }
      }
    }
  }
}

TEST(SchemeCompose, RelabelMatchesDirectRelabelling) {
  // Leader flags arrive encoded as label 7; the adapter maps them onto the
  // scheme's expected flag.
  SchemeRegistry& reg = builtin_registry();
  const auto base = reg.make("leader-election");
  const auto adapted = relabel(*base, [](std::uint64_t label) {
    return label == 7 ? schemes::kLeaderFlag : 0;
  });
  DirectEngine direct({/*cache_views=*/false});
  for (std::uint32_t seed = 1; seed <= 4; ++seed) {
    Graph g = gen::random_connected(14, 0.15, seed);
    g.set_label(3, 7);
    Graph mapped = g;
    mapped.set_label(3, schemes::kLeaderFlag);

    ASSERT_EQ(adapted->holds(g), base->holds(mapped));
    const Proof p = adapted->prove(g).value_or(Proof::empty(g.n()));
    const Proof q = base->prove(mapped).value_or(Proof::empty(g.n()));
    expect_equal(direct.run(mapped, q, base->verifier()),
                 direct.run(g, p, adapted->verifier()), "relabel");
    EXPECT_TRUE(direct.run(g, p, adapted->verifier()).all_accept);
  }
}

// -------------------------------------------------------------- session --

TEST(SchemeCompose, SessionFacadeVerifiesAndApplies) {
  auto session = VerificationSession::on(gen::cycle(6))
                     .scheme("bipartite")
                     .engine(EngineKind::kDirect)
                     .build();
  EXPECT_TRUE(session.verify().all_accept);
  EXPECT_EQ(session.scheme().name(), "bipartite");
  EXPECT_EQ(session.incremental_engine(), nullptr);

  // An out-of-band proof edit flows through apply();  with no maintainer
  // the session reproves and keeps accepting.
  MutationBatch tamper;
  tamper.set_proof_label(2, BitString::from_string("101"));
  EXPECT_TRUE(session.apply(tamper).all_accept);
  EXPECT_EQ(session.stats().reproves, 1u);

  EXPECT_THROW((void)VerificationSession::on(gen::cycle(4)).build(),
               std::invalid_argument);
  EXPECT_THROW((void)VerificationSession::on(gen::cycle(4))
                   .scheme("bipartite")
                   .engine("warp-drive"),
               std::invalid_argument);
}

TEST(SchemeCompose, ConjunctionSessionTracksComponentAndUnderChurn) {
  SchemeRegistry& reg = builtin_registry();
  const auto leader = reg.make("leader-election");
  const auto matching = reg.make("maximal-matching");

  Graph start = gen::random_connected(20, 0.12, 77);
  start.set_label(0, schemes::kLeaderFlag);
  const std::vector<bool> matched = greedy_maximal_matching(start);
  for (int e = 0; e < start.m(); ++e) {
    if (matched[static_cast<std::size_t>(e)]) {
      start.set_edge_label(e,
                           schemes::MaximalMatchingScheme::kMatchedBit);
    }
  }

  auto session = VerificationSession::on(std::move(start))
                     .scheme("leader-election & maximal-matching")
                     .engine(EngineKind::kIncremental)
                     .maintain(true)
                     .build();
  ASSERT_TRUE(session.maintainer_bound());
  ASSERT_TRUE(session.verify().all_accept);

  DirectEngine fresh({/*cache_views=*/false});
  std::mt19937 rng(4242);
  for (int step = 0; step < 120; ++step) {
    const Graph& g = session.graph();
    MutationBatch batch;
    const int roll = static_cast<int>(rng() % 100);
    if (roll < 40 && g.m() > 2) {
      const int e = static_cast<int>(rng() % static_cast<unsigned>(g.m()));
      batch.remove_edge(g.edge_u(e), g.edge_v(e));
    } else if (roll < 75) {
      for (int tries = 0; tries < 16; ++tries) {
        const int u = static_cast<int>(rng() % static_cast<unsigned>(g.n()));
        const int v = static_cast<int>(rng() % static_cast<unsigned>(g.n()));
        if (u != v && !g.has_edge(u, v)) {
          batch.add_edge(u, v);
          break;
        }
      }
    } else if (roll < 90 && g.m() > 0) {
      // Out-of-band matched-bit toggle: the matching component heals it,
      // the tree component must shrug off the relayed edge-label op.
      const int e = static_cast<int>(rng() % static_cast<unsigned>(g.m()));
      batch.set_edge_label(
          g.edge_u(e), g.edge_v(e),
          g.edge_label(e) ^ schemes::MaximalMatchingScheme::kMatchedBit);
    } else {
      const int v = static_cast<int>(rng() % static_cast<unsigned>(g.n()));
      if (g.label(v) == 0) {
        const int old =
            g.find_label(schemes::kLeaderFlag).value_or(-1);
        if (old >= 0) batch.set_node_label(old, 0);
        batch.set_node_label(v, schemes::kLeaderFlag);
      }
    }
    if (batch.empty()) continue;

    const RunResult got = session.apply(batch);
    const RunResult want =
        fresh.run(session.graph(), session.proof(),
                  session.scheme().verifier());
    ASSERT_EQ(got.all_accept, want.all_accept) << "step " << step;
    ASSERT_EQ(got.rejecting, want.rejecting) << "step " << step;
    ASSERT_EQ(got.all_accept, leader->holds(session.graph()) &&
                                  matching->holds(session.graph()))
        << "step " << step;
  }

  const auto* composed = dynamic_cast<const dynamic::ComposedMaintainer*>(
      session.maintainer());
  ASSERT_NE(composed, nullptr);
  EXPECT_GT(session.stats().repaired, 80u);
  EXPECT_GT(composed->stats().labels_emitted, 0u);
  EXPECT_GT(composed->stats().relayed_ops, 0u);
}

}  // namespace
}  // namespace lcp
