// The LogLCP schemes of Section 5: leader election, spanning trees,
// parity, acyclicity, non-bipartiteness, Hamiltonian cycle/path, maximum
// matching on cycles.  Completeness across families, size bounds, and
// adversarial soundness probes.
#include <gtest/gtest.h>

#include "algo/traversal.hpp"
#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "schemes/cycle_certified.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp::schemes {
namespace {

std::vector<Graph> connected_family(int base) {
  std::vector<Graph> graphs;
  graphs.push_back(gen::cycle(5 + base));
  graphs.push_back(gen::path(4 + base));
  graphs.push_back(gen::star(4 + base));
  graphs.push_back(gen::random_tree(8 + base, static_cast<std::uint32_t>(base)));
  graphs.push_back(gen::random_connected(9 + base, 0.3,
                                         static_cast<std::uint32_t>(base)));
  graphs.push_back(gen::grid(3, 3 + base % 3));
  graphs.push_back(gen::petersen());
  graphs.push_back(gen::hypercube(3));
  return graphs;
}

TEST(LeaderElection, CompletenessAnyLeaderAnywhere) {
  const LeaderElectionScheme scheme;
  for (Graph g : connected_family(0)) {
    for (int leader : {0, g.n() / 2, g.n() - 1}) {
      for (int v = 0; v < g.n(); ++v) g.set_label(v, 0);
      g.set_label(leader, kLeaderFlag);
      EXPECT_TRUE(scheme.holds(g));
      EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << "leader " << leader;
    }
  }
}

TEST(LeaderElection, TwoLeadersHaveNoProof) {
  const LeaderElectionScheme scheme;
  Graph g = gen::cycle(6);
  g.set_label(1, kLeaderFlag);
  g.set_label(4, kLeaderFlag);
  EXPECT_FALSE(scheme.holds(g));
  // Transplant attack: stitch two single-leader proofs together.
  Graph g1 = gen::cycle(6);
  g1.set_label(1, kLeaderFlag);
  Graph g2 = gen::cycle(6);
  g2.set_label(4, kLeaderFlag);
  const auto p1 = scheme.prove(g1);
  const auto p2 = scheme.prove(g2);
  Proof stitched = *p1;
  for (int v = 3; v < 6; ++v) {
    stitched.labels[static_cast<std::size_t>(v)] =
        p2->labels[static_cast<std::size_t>(v)];
  }
  EXPECT_TRUE(rejected(g, stitched, scheme.verifier()));
}

TEST(LeaderElection, NoLeaderRejected) {
  const LeaderElectionScheme scheme;
  const Graph g = gen::cycle(5);
  EXPECT_FALSE(scheme.holds(g));
  const auto variants = tampered_variants(
      [] {
        Graph h = gen::cycle(5);
        h.set_label(2, kLeaderFlag);
        return LeaderElectionScheme().prove(h).value();
      }(),
      60, 3);
  for (const Proof& p : variants) {
    EXPECT_TRUE(rejected(g, p, scheme.verifier()));
  }
}

TEST(LeaderElection, ProofSizeLogarithmic) {
  const LeaderElectionScheme scheme;
  Graph small = gen::cycle(8);
  small.set_label(0, kLeaderFlag);
  Graph large = gen::cycle(256);
  large.set_label(0, kLeaderFlag);
  const int s = scheme.prove(small)->size_bits();
  const int l = scheme.prove(large)->size_bits();
  EXPECT_LT(l, 2 * s);  // log growth, not linear
  EXPECT_LE(l, 15 + 4 * 9);
}

Graph with_spanning_tree_labels(Graph g, std::uint32_t seed) {
  // Label a BFS tree from a seeded node.
  const RootedTree tree = bfs_tree(g, static_cast<int>(seed) % g.n());
  for (int v = 0; v < g.n(); ++v) {
    if (v == tree.root) continue;
    const int e = g.edge_index(v, tree.parent[static_cast<std::size_t>(v)]);
    g.set_edge_label(e, SpanningTreeScheme::kTreeEdgeBit);
  }
  return g;
}

TEST(SpanningTree, CompletenessOnFamilies) {
  const SpanningTreeScheme scheme;
  for (std::uint32_t seed = 0; seed < 3; ++seed) {
    for (Graph g : connected_family(static_cast<int>(seed))) {
      g = with_spanning_tree_labels(std::move(g), seed);
      EXPECT_TRUE(scheme.holds(g));
      EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
    }
  }
}

TEST(SpanningTree, NonTreeEdgeSetsRejected) {
  const SpanningTreeScheme scheme;
  // All edges of a cycle labelled: n edges, not a tree.
  Graph g = gen::cycle(7);
  for (int e = 0; e < g.m(); ++e) {
    g.set_edge_label(e, SpanningTreeScheme::kTreeEdgeBit);
  }
  EXPECT_FALSE(scheme.holds(g));
  // Try honest proofs of related yes-instances as adversarial proofs.
  Graph yes = gen::cycle(7);
  for (int e = 1; e < yes.m(); ++e) {
    yes.set_edge_label(e, SpanningTreeScheme::kTreeEdgeBit);
  }
  const auto p = scheme.prove(yes);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(rejected(g, *p, scheme.verifier()));
}

TEST(SpanningTree, TwoComponentsOfLabelsRejected) {
  // Two disjoint labelled paths inside one cycle: right count is n-1?
  // No: 2 missing edges -> n-2 labelled, holds() false; the verifier must
  // reject any transplanted proof (this is the Section 5.4 scenario).
  const SpanningTreeScheme scheme;
  Graph g = gen::cycle(8);
  for (int e = 0; e < g.m(); ++e) {
    if (e != 2 && e != 6) {
      g.set_edge_label(e, SpanningTreeScheme::kTreeEdgeBit);
    }
  }
  EXPECT_FALSE(scheme.holds(g));
  const auto honest = scheme.prove(with_spanning_tree_labels(gen::cycle(8), 0));
  for (const Proof& p : tampered_variants(*honest, 60, 5)) {
    EXPECT_TRUE(rejected(g, p, scheme.verifier()));
  }
}

TEST(Parity, OddAndEvenSchemes) {
  for (Graph g : connected_family(0)) {
    const bool odd = g.n() % 2 == 1;
    EXPECT_TRUE(scheme_accepts_own_proof(ParityScheme(odd), g)) << g.n();
    EXPECT_FALSE(ParityScheme(!odd).holds(g));
    EXPECT_FALSE(ParityScheme(!odd).prove(g).has_value());
  }
}

TEST(Parity, WrongParityProofTransplantRejected) {
  const ParityScheme odd(true);
  const Graph even_cycle = gen::cycle(8);
  const auto honest_odd = odd.prove(gen::cycle(7));
  ASSERT_TRUE(honest_odd.has_value());
  // An 8-cycle given the 7-cycle's proof: lengths differ, must reject.
  Proof padded = Proof::empty(8);
  for (int v = 0; v < 7; ++v) {
    padded.labels[static_cast<std::size_t>(v)] =
        honest_odd->labels[static_cast<std::size_t>(v)];
  }
  padded.labels[7] = honest_odd->labels[6];
  EXPECT_TRUE(rejected(even_cycle, padded, odd.verifier()));
}

TEST(Acyclic, ForestsAcceptedCyclesRejected) {
  const AcyclicScheme scheme;
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::random_tree(10, 1)));
  EXPECT_TRUE(scheme_accepts_own_proof(
      scheme, gen::disjoint_union(gen::path(4), gen::random_tree(5, 2))));
  EXPECT_FALSE(scheme.holds(gen::cycle(6)));
  // 7-bit labels cover every width-1 distance labelling of the triangle.
  EXPECT_FALSE(exists_accepted_proof(gen::cycle(3), scheme.verifier(), 7));
}

TEST(Acyclic, TruncatedVariantIsFooledByLongCycles) {
  // The b-bit acyclicity verifier accepts a 2^b-multiple cycle with
  // wrapped distance labels: the direct Theta(log n) separation.
  const int b = 3;
  const AcyclicScheme trunc(b);
  const Graph cycle = gen::cycle(16);  // 16 = 2 * 2^3
  Proof p = Proof::empty(16);
  for (int v = 0; v < 16; ++v) {
    p.labels[static_cast<std::size_t>(v)].append_uint(
        static_cast<std::uint64_t>(b), 6);
    p.labels[static_cast<std::size_t>(v)].append_uint(
        static_cast<std::uint64_t>(v % (1 << b)), b);
  }
  EXPECT_FALSE(trunc.holds(cycle));
  EXPECT_TRUE(default_engine().run(cycle, p, trunc.verifier()).all_accept)
      << "the truncated scheme should be unsound here";
  // While the honest scheme rejects every tamper we can throw at it.
  const AcyclicScheme honest;
  EXPECT_TRUE(rejected(cycle, p, honest.verifier()));
}

TEST(NonBipartite, OddCycleCertified) {
  const NonBipartiteScheme scheme;
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::cycle(7)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::petersen()));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::complete(5)));
  // Odd cycle with trees hanging off it.
  Graph g = gen::cycle(5);
  const int extra = g.add_node(50);
  g.add_edge(0, extra);
  const int extra2 = g.add_node(51);
  g.add_edge(extra, extra2);
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
}

TEST(NonBipartite, BipartiteInstancesRejected) {
  const NonBipartiteScheme scheme;
  EXPECT_FALSE(scheme.holds(gen::cycle(6)));
  EXPECT_FALSE(scheme.holds(gen::grid(3, 3)));
  const auto honest = scheme.prove(gen::cycle(7));
  ASSERT_TRUE(honest.has_value());
  // Odd-cycle proof transplanted onto an extended even cycle.
  Proof padded = Proof::empty(8);
  for (int v = 0; v < 7; ++v) {
    padded.labels[static_cast<std::size_t>(v)] =
        honest->labels[static_cast<std::size_t>(v)];
  }
  padded.labels[7] = honest->labels[3];
  EXPECT_TRUE(rejected(gen::cycle(8), padded, scheme.verifier()));
  for (const Proof& p : tampered_variants(*honest, 40, 11)) {
    EXPECT_TRUE(rejected(gen::cycle(6),
                         [&p] {
                           Proof q = Proof::empty(6);
                           for (int v = 0; v < 6; ++v) {
                             q.labels[static_cast<std::size_t>(v)] =
                                 p.labels[static_cast<std::size_t>(v)];
                           }
                           return q;
                         }(),
                         scheme.verifier()));
  }
}

Graph labeled_hamiltonian_cycle(int n) {
  Graph g = gen::cycle(n);
  for (int e = 0; e < g.m(); ++e) {
    g.set_edge_label(e, HamiltonianCycleScheme::kCycleEdgeBit);
  }
  // Add unlabelled chords so the cycle is a strict subgraph.
  if (n >= 6) g.add_edge(0, n / 2);
  return g;
}

TEST(HamiltonianCycle, CompletenessWithChords) {
  const HamiltonianCycleScheme scheme;
  for (int n : {5, 6, 9, 12}) {
    const Graph g = labeled_hamiltonian_cycle(n);
    EXPECT_TRUE(scheme.holds(g));
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << n;
  }
}

TEST(HamiltonianCycle, TwoDisjointCyclesRejected) {
  // Two labelled 4-cycles joined by an unlabelled bridge: every node has
  // two labelled edges but the structure is not one Hamiltonian cycle.
  Graph g;
  for (int i = 1; i <= 8; ++i) g.add_node(static_cast<NodeId>(i));
  const std::uint64_t bit = HamiltonianCycleScheme::kCycleEdgeBit;
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      g.add_edge(base + i, base + (i + 1) % 4, bit);
    }
  }
  g.add_edge(0, 4);  // unlabelled bridge keeps it connected
  const HamiltonianCycleScheme scheme;
  EXPECT_FALSE(scheme.holds(g));
  // Transplant: stitch two honest 4-cycle proofs.
  Graph c4 = gen::cycle(4);
  for (int e = 0; e < 4; ++e) c4.set_edge_label(e, bit);
  const auto p4 = scheme.prove(c4);
  ASSERT_TRUE(p4.has_value());
  Proof stitched = Proof::empty(8);
  for (int v = 0; v < 4; ++v) {
    stitched.labels[static_cast<std::size_t>(v)] =
        p4->labels[static_cast<std::size_t>(v)];
    stitched.labels[static_cast<std::size_t>(v + 4)] =
        p4->labels[static_cast<std::size_t>(v)];
  }
  EXPECT_TRUE(rejected(g, stitched, scheme.verifier()));
}

TEST(HamiltonianPath, CompletenessAndEndpointChecks) {
  const HamiltonianPathScheme scheme;
  Graph g = gen::grid(2, 4);  // snake path exists
  // Label a snake: 0-1-2-3-7-6-5-4.
  const int order[] = {0, 1, 2, 3, 7, 6, 5, 4};
  for (int i = 0; i + 1 < 8; ++i) {
    g.set_edge_label(g.edge_index(order[i], order[i + 1]),
                     HamiltonianPathScheme::kPathEdgeBit);
  }
  EXPECT_TRUE(scheme.holds(g));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
  for (const Proof& p : tampered_variants(*scheme.prove(g), 60, 13)) {
    // Tampers either remain valid proofs (possible: another witness) or
    // get rejected; a rejected *yes*-instance is fine, but acceptance of
    // the broken labelled path below is not.
    (void)p;
  }
  // Break the path labels: drop one edge.
  Graph broken = g;
  broken.set_edge_label(broken.edge_index(3, 7), 0);
  EXPECT_FALSE(scheme.holds(broken));
  EXPECT_TRUE(rejected(broken, *scheme.prove(g), scheme.verifier()));
}

Graph labeled_max_matching_cycle(int n) {
  Graph g = gen::cycle(n);
  for (int i = 1; i + 1 < n; i += 2) {
    g.set_edge_label(g.edge_index(i, i + 1),
                     MaxMatchingCycleScheme::kMatchedBit);
  }
  return g;
}

TEST(MaxMatchingCycle, OddAndEvenCompleteness) {
  const MaxMatchingCycleScheme scheme;
  for (int n : {4, 6, 5, 9, 11}) {
    Graph g = n % 2 == 0 ? gen::cycle(n) : labeled_max_matching_cycle(n);
    if (n % 2 == 0) {
      // Perfect matching: edges (0,1), (2,3), ...
      for (int i = 0; i < n; i += 2) {
        g.set_edge_label(g.edge_index(i, i + 1),
                         MaxMatchingCycleScheme::kMatchedBit);
      }
    }
    EXPECT_TRUE(scheme.holds(g)) << n;
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << n;
  }
}

TEST(MaxMatchingCycle, SubOptimalMatchingRejected) {
  const MaxMatchingCycleScheme scheme;
  // 8-cycle with only 3 matched edges (max is 4).
  Graph g = gen::cycle(8);
  for (int i : {0, 2, 4}) {
    g.set_edge_label(g.edge_index(i, i + 1),
                     MaxMatchingCycleScheme::kMatchedBit);
  }
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_TRUE(rejected(g, Proof::empty(8), scheme.verifier()));
  // With a forged odd-n certificate rooted at one unmatched node.
  const auto honest = scheme.prove(labeled_max_matching_cycle(7));
  Proof padded = Proof::empty(8);
  for (int v = 0; v < 7; ++v) {
    padded.labels[static_cast<std::size_t>(v)] =
        honest->labels[static_cast<std::size_t>(v)];
  }
  padded.labels[7] = honest->labels[5];
  EXPECT_TRUE(rejected(g, padded, scheme.verifier()));
}

}  // namespace
}  // namespace lcp::schemes
