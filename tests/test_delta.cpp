// The delta subsystem: Graph::remove_edge, MutationBatch/DeltaTracker
// bookkeeping (dirty log, XOR state fingerprint, stepwise structural
// BFS), and the IncrementalEngine's tracker integration on targeted
// ball-boundary cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/delta.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "lower/gluing.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

TEST(RemoveEdge, SwapsLastEdgeIntoFreedSlot) {
  Graph g;
  for (int v = 0; v < 5; ++v) g.add_node(static_cast<NodeId>(v + 1));
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 11);
  g.add_edge(2, 3, 12);
  g.add_edge(3, 4, 13);
  g.remove_edge(1, 2);
  EXPECT_EQ(g.m(), 3);
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(3, 4));
  // The moved edge's adjacency entries must point at its new index.
  const int moved = g.edge_index(3, 4);
  EXPECT_EQ(g.edge_label(moved), 13u);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_THROW(g.remove_edge(1, 2), std::invalid_argument);
}

TEST(RemoveEdge, PortsStaySortedById) {
  Graph g = gen::cycle(6);
  g.remove_edge(2, 3);
  for (int v = 0; v < g.n(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
      EXPECT_LT(g.id(nbrs[i].to), g.id(nbrs[i + 1].to)) << v;
    }
  }
  const int e = g.add_edge(2, 3);
  EXPECT_EQ(g.edge_index(2, 3), e);
}

TEST(DeltaTracker, FingerprintTracksMutations) {
  Graph g = gen::grid(3, 3);
  Proof p = Proof::empty(g.n());
  DeltaTracker tracker(g, p, 1);
  EXPECT_EQ(tracker.state_fingerprint(),
            DeltaTracker::state_fingerprint_of(g, p));

  MutationBatch batch;
  batch.set_node_label(0, 7);
  BitString bits;
  bits.append_uint(5, 3);
  batch.set_proof_label(4, bits);
  batch.add_edge(0, 4);
  batch.set_edge_label(0, 4, 9);
  batch.set_edge_weight(0, 4, -2);
  batch.remove_edge(0, 1);
  tracker.apply(batch);

  EXPECT_EQ(tracker.generation(), 1u);
  EXPECT_EQ(g.label(0), 7u);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_label(g.edge_index(0, 4)), 9u);
  EXPECT_EQ(g.edge_weight(g.edge_index(0, 4)), -2);
  EXPECT_EQ(p.labels[4], bits);
  // The incremental fingerprint equals a from-scratch recompute.
  EXPECT_EQ(tracker.state_fingerprint(),
            DeltaTracker::state_fingerprint_of(g, p));
}

TEST(DeltaTracker, DirtyRecordsNameEpicentres) {
  // Path 0-1-2-3-4-5, horizon 2.
  Graph g;
  for (int v = 0; v < 6; ++v) g.add_node(static_cast<NodeId>(v + 1));
  for (int v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1);
  Proof p = Proof::empty(6);
  DeltaTracker tracker(g, p, 2);

  MutationBatch batch;
  BitString one;
  one.append_bit(true);
  batch.set_proof_label(0, one);
  batch.set_node_label(5, 3);
  tracker.apply(batch);

  const auto records = tracker.records_since(0);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0]->proof_nodes, std::vector<int>{0});
  EXPECT_EQ((*records)[0]->relabeled_nodes, std::vector<int>{5});
  EXPECT_TRUE((*records)[0]->structural_dirty.empty());

  // Structural mutation: removing {2,3} dirties exactly the centres whose
  // radius-2 ball contains BOTH endpoints in the pre-removal graph —
  // ball(2) = {0..4} intersected with ball(3) = {1..5}.  Nodes 0 and 5
  // see only one endpoint, so their views cannot change.
  MutationBatch structural;
  structural.remove_edge(2, 3);
  tracker.apply(structural);
  const auto after = tracker.records_since(1);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ((*after)[0]->structural_dirty, (std::vector<int>{1, 2, 3, 4}));

  // Closing the far ends: post-mutation radius-2 balls around 0
  // ({0,1,2,4,5}) and around 5 ({0,1,3,4,5}) intersect in {0,1,4,5};
  // nodes 2 and 3 cannot see the new edge.
  MutationBatch add;
  add.add_edge(0, 5);
  tracker.apply(add);
  const auto third = tracker.records_since(2);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ((*third)[0]->structural_dirty, (std::vector<int>{0, 1, 4, 5}));

  EXPECT_EQ(tracker.records_since(3)->size(), 0u);
  EXPECT_EQ(tracker.state_fingerprint(),
            DeltaTracker::state_fingerprint_of(g, p));
}

TEST(DeltaTracker, AddNodeGrowsPairAndFingerprint) {
  Graph g = gen::path(4);
  Proof p = Proof::empty(4);
  DeltaTracker tracker(g, p, 2);

  // An isolated addition, then an attach of the fresh index in one batch.
  MutationBatch batch;
  batch.add_node(100, 3);
  batch.add_edge(4, 1);
  tracker.apply(batch);

  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.id(4), 100u);
  EXPECT_EQ(g.label(4), 3u);
  EXPECT_TRUE(g.has_edge(4, 1));
  ASSERT_EQ(p.labels.size(), 5u);
  EXPECT_TRUE(p.labels[4].empty());
  EXPECT_EQ(tracker.state_fingerprint(),
            DeltaTracker::state_fingerprint_of(g, p));

  const auto records = tracker.records_since(0);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0]->added_nodes, std::vector<int>{4});
  // The new node is structurally dirty, as is everything within horizon 2
  // of the attach endpoints.
  const auto& dirty = (*records)[0]->structural_dirty;
  EXPECT_TRUE(std::find(dirty.begin(), dirty.end(), 4) != dirty.end());
  EXPECT_TRUE(std::find(dirty.begin(), dirty.end(), 1) != dirty.end());

  // Duplicate ids are refused mid-batch, leaving the applied prefix
  // consistent.
  MutationBatch dup;
  dup.add_node(100);
  EXPECT_THROW(tracker.apply(dup), std::invalid_argument);
  EXPECT_EQ(tracker.state_fingerprint(),
            DeltaTracker::state_fingerprint_of(g, p));
}

TEST(IncrementalEngine, NodeAdditionsKeepCacheIncremental) {
  // Bipartiteness on a growing even cycle: append two nodes and reclose
  // the cycle, which keeps the property true and the proof extendable.
  const schemes::BipartiteScheme scheme;
  Graph g = gen::cycle(8);
  Proof p = *scheme.prove(g);
  DeltaTracker tracker(g, p, scheme.verifier().radius());
  IncrementalEngine engine;
  const TrackerAttachment attachment(engine, tracker);

  EXPECT_TRUE(engine.run(g, p, scheme.verifier()).all_accept);
  EXPECT_EQ(engine.stats().full_sweeps, 1u);

  NodeId next = g.max_id() + 1;
  for (int round = 0; round < 4; ++round) {
    const int n = g.n();
    MutationBatch grow;
    grow.remove_edge(n - 1, 0);
    grow.add_node(next++);
    grow.add_node(next++);
    grow.add_edge(n - 1, n);
    grow.add_edge(n, n + 1);
    grow.add_edge(n + 1, 0);
    // Colour the two fresh nodes consistently with their cycle position.
    BitString even, odd;
    even.append_bit(false);
    odd.append_bit(true);
    grow.set_proof_label(n, p.labels[static_cast<std::size_t>(n - 1)].bit(0)
                                ? even
                                : odd);
    grow.set_proof_label(n + 1,
                         p.labels[0].bit(0) ? even : odd);
    tracker.apply(grow);

    const RunResult got = engine.run(g, p, scheme.verifier());
    const RunResult want = sweep_sequential(g, p, scheme.verifier());
    EXPECT_EQ(got.all_accept, want.all_accept) << "round " << round;
    EXPECT_EQ(got.rejecting, want.rejecting) << "round " << round;
    EXPECT_TRUE(got.all_accept) << "round " << round;
  }
  // Every growth round was served from the cache, not a resweep.
  EXPECT_EQ(engine.stats().full_sweeps, 1u);
  EXPECT_EQ(engine.stats().incremental_runs, 4u);
}

TEST(DeltaTracker, ProofOnlySessionRejectsGraphMutations) {
  const Graph g = gen::cycle(5);
  Proof p = Proof::empty(g.n());
  DeltaTracker tracker(g, p, 1);
  MutationBatch batch;
  batch.set_node_label(0, 1);
  EXPECT_THROW(tracker.apply(batch), std::logic_error);
  // The failed batch still produced a (vacuous) record.
  EXPECT_EQ(tracker.generation(), 1u);

  MutationBatch ok;
  BitString bit;
  bit.append_bit(true);
  ok.set_proof_label(2, bit);
  tracker.apply(ok);
  EXPECT_EQ(p.labels[2], bit);
}

TEST(DeltaTracker, RecordsSinceReportsTrimming) {
  const Graph g = gen::cycle(4);
  Proof p = Proof::empty(g.n());
  DeltaTracker tracker(g, p, 1);
  BitString bit;
  bit.append_bit(true);
  for (int i = 0; i < 1100; ++i) {  // exceeds the log cap
    MutationBatch batch;
    batch.set_proof_label(i % 4, bit);
    tracker.apply(batch);
  }
  EXPECT_FALSE(tracker.records_since(0).has_value());
  EXPECT_TRUE(tracker.records_since(tracker.generation() - 10).has_value());
}

TEST(IncrementalEngine, BallBoundaryMutations) {
  // Path graph, radius-2 verifier: a proof flip at distance 3 from a
  // centre must not re-verify it; at distance 2 it must.
  Graph g;
  const int n = 9;
  for (int v = 0; v < n; ++v) g.add_node(static_cast<NodeId>(v + 1));
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  Proof p = Proof::empty(n);
  const LambdaVerifier ver(2, [](const View& v) {
    // Accept iff no proof bit set anywhere in the 2-ball.
    for (int u = 0; u < v.ball.n(); ++u) {
      if (v.proof_of(u).size() > 0) return false;
    }
    return true;
  });

  DeltaTracker tracker(g, p, 2);
  IncrementalEngine engine;
  ASSERT_TRUE(engine.attach_tracker(&tracker));
  EXPECT_TRUE(engine.run(g, p, ver).all_accept);

  BitString bit;
  bit.append_bit(true);
  MutationBatch batch;
  batch.set_proof_label(8, bit);  // distance 3+ from centres 0..5
  tracker.apply(batch);
  const RunResult r = engine.run(g, p, ver);
  // Exactly the centres within distance 2 of node 8 reject.
  EXPECT_EQ(r.rejecting, (std::vector<int>{6, 7, 8}));
  EXPECT_EQ(engine.stats().nodes_reverified, 3u);

  // Fresh-engine cross-check.
  DirectEngine fresh({/*cache_views=*/false});
  const RunResult expected = fresh.run(g, p, ver);
  EXPECT_EQ(expected.rejecting, r.rejecting);
  engine.attach_tracker(nullptr);
}

TEST(IncrementalEngine, EdgeChurnNearBallBoundary) {
  // Adding an edge pulls a distant dirty label into a centre's ball; the
  // engine must notice through the structural record.
  Graph g;
  const int n = 8;
  for (int v = 0; v < n; ++v) g.add_node(static_cast<NodeId>(v + 1));
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  Proof p = Proof::empty(n);
  BitString bit;
  bit.append_bit(true);
  p.labels[7] = bit;  // node 7 carries the poison label from the start
  const LambdaVerifier ver(1, [](const View& v) {
    for (int u = 0; u < v.ball.n(); ++u) {
      if (v.proof_of(u).size() > 0) return false;
    }
    return true;
  });

  DeltaTracker tracker(g, p, 1);
  IncrementalEngine engine;
  engine.attach_tracker(&tracker);
  DirectEngine fresh({/*cache_views=*/false});
  EXPECT_EQ(engine.run(g, p, ver).rejecting, fresh.run(g, p, ver).rejecting);

  MutationBatch batch;
  batch.add_edge(0, 7);  // node 0 suddenly sees the poison label
  tracker.apply(batch);
  const RunResult r = engine.run(g, p, ver);
  EXPECT_EQ(r.rejecting, fresh.run(g, p, ver).rejecting);
  EXPECT_FALSE(r.all_accept);
  ASSERT_FALSE(r.rejecting.empty());
  EXPECT_EQ(r.rejecting.front(), 0);

  MutationBatch undo;
  undo.remove_edge(0, 7);
  tracker.apply(undo);
  EXPECT_EQ(engine.run(g, p, ver).rejecting, fresh.run(g, p, ver).rejecting);
  engine.attach_tracker(nullptr);
}

TEST(IncrementalEngine, OutOfBandMutationFallsBack) {
  Graph g = gen::cycle(10);
  Proof p = Proof::empty(g.n());
  const LambdaVerifier ver(1, [](const View& v) {
    return v.proof_of(v.center).size() == 0;
  });
  DeltaTracker tracker(g, p, 1);
  IncrementalEngine engine;
  engine.attach_tracker(&tracker);
  EXPECT_TRUE(engine.run(g, p, ver).all_accept);

  // Mutate BEHIND the tracker's back: verify_state must catch it.
  BitString bit;
  bit.append_bit(true);
  p.labels[3] = bit;
  const RunResult r = engine.run(g, p, ver);
  EXPECT_EQ(r.rejecting, std::vector<int>{3});
  EXPECT_GE(engine.stats().fallbacks, 1u);

  // After the resync the tracker path works again.
  MutationBatch batch;
  batch.set_proof_label(3, BitString{});
  tracker.apply(batch);
  EXPECT_TRUE(engine.run(g, p, ver).all_accept);
  engine.attach_tracker(nullptr);
}

TEST(IncrementalEngine, VerifierSwapInvalidatesCachedVerdicts) {
  // Regression: cached verdicts are keyed on the verifier's identity; a
  // different verifier of equal radius on the same unchanged (graph,
  // proof) must not be served the previous verifier's verdicts.
  const Graph g = gen::cycle(6);
  const Proof p = Proof::empty(6);
  const LambdaVerifier always(1, [](const View&) { return true; });
  const LambdaVerifier never(1, [](const View&) { return false; });
  IncrementalEngine engine;
  EXPECT_TRUE(engine.run(g, p, always).all_accept);
  const RunResult swapped = engine.run(g, p, never);
  EXPECT_FALSE(swapped.all_accept);
  EXPECT_EQ(swapped.rejecting.size(), 6u);

  // Same on the tracker path: swap verifiers mid-session.
  Graph gt = gen::cycle(6);
  Proof pt = Proof::empty(6);
  DeltaTracker tracker(gt, pt, 1);
  engine.attach_tracker(&tracker);
  EXPECT_TRUE(engine.run(gt, pt, always).all_accept);
  EXPECT_FALSE(engine.run(gt, pt, never).all_accept);
  engine.attach_tracker(nullptr);
}

TEST(IncrementalEngine, InterleavedForeignRunDoesNotPoisonTrackerCache) {
  // Regression: a content-path run on a different graph of the same size
  // and radius rebuilds the cache for that graph; the next tracker-path
  // run must NOT serve the foreign verdicts as its own.
  const int n = 10;
  Graph ga = gen::cycle(n);
  Graph gb = gen::cycle(n);
  Proof pa = Proof::empty(n);
  Proof pb = Proof::empty(n);
  BitString bit;
  bit.append_bit(true);
  pb.labels[5] = bit;  // gb rejects at node 5's neighbourhood
  const LambdaVerifier ver(1, [](const View& v) {
    return v.proof_of(v.center).size() == 0;
  });

  DeltaTracker tracker(ga, pa, 1);
  IncrementalEngine engine;
  engine.attach_tracker(&tracker);
  EXPECT_TRUE(engine.run(ga, pa, ver).all_accept);
  EXPECT_FALSE(engine.run(gb, pb, ver).all_accept);  // foreign content run
  EXPECT_TRUE(engine.run(ga, pa, ver).all_accept);   // must not see gb's
  engine.attach_tracker(nullptr);
}

TEST(IncrementalEngine, GluingSurgeryIsIncremental) {
  // The Figure 1 splice through the delta API: only the seam balls are
  // re-verified, and the verdict matches a fresh engine's.
  const lower::GluingProblem problem = lower::leader_election_problem(2);
  const int n = 33;
  IncrementalEngine engine;
  const lower::GluingOutcome outcome =
      lower::run_gluing_attack(problem, n, 40, 8, engine);
  ASSERT_TRUE(outcome.found_collision);
  // Premise: every node accepted the pre-surgery union (the warm run).
  EXPECT_TRUE(outcome.union_all_accept);
  EXPECT_TRUE(outcome.fooled());
  const auto& stats = engine.stats();
  EXPECT_GE(stats.incremental_runs, 1u);
  // The post-surgery re-verification touched a seam neighbourhood, not
  // all 2n nodes.
  EXPECT_LT(stats.nodes_reverified, static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace lcp
