// The Section 5.3 cycle-gluing adversary: truncated schemes are fooled
// (the Omega(log n) lower bound, executed), honest schemes never are.
#include <gtest/gtest.h>

#include "lower/gluing.hpp"

namespace lcp::lower {
namespace {

TEST(GluingIds, PaperLayoutFigure1) {
  // Figure 1: n = 10, C(3, 12) = 3 43 63 83 103 112 92 72 52 12.
  const auto ids = gluing_cycle_ids(10, 3, 12);
  const std::vector<NodeId> expected{3, 43, 63, 83, 103, 112, 92, 72, 52, 12};
  EXPECT_EQ(ids, expected);
}

TEST(GluingIds, DisjointForDistinctPairs) {
  const auto a = gluing_cycle_ids(10, 3, 12);
  const auto b = gluing_cycle_ids(10, 8, 17);
  for (NodeId x : a) {
    for (NodeId y : b) EXPECT_NE(x, y);
  }
}

struct AttackCase {
  const char* name;
  GluingProblem (*make)(int);
  int n;
  int bits;
  bool expect_fooled;
};

class GluingAttack : public ::testing::TestWithParam<AttackCase> {};

TEST_P(GluingAttack, OutcomeMatchesTheTheory) {
  const AttackCase& c = GetParam();
  const GluingProblem problem = c.make(c.bits);
  const GluingOutcome outcome = run_gluing_attack(problem, c.n, 40);
  EXPECT_TRUE(outcome.proved_all) << "prover failed on some C(a,b)";
  EXPECT_EQ(outcome.fooled(), c.expect_fooled)
      << problem.name << " n=" << c.n << " b=" << c.bits
      << " collision=" << outcome.found_collision
      << " accept=" << outcome.all_accept << " yes=" << outcome.glued_is_yes;
}

// b = 2 bits on n ~ 31..41 cycles: far below log2(n) -> fooled.
// b = 0 (honest Theta(log n)): never fooled.
INSTANTIATE_TEST_SUITE_P(
    Sweep, GluingAttack,
    ::testing::Values(
        AttackCase{"leader-trunc", leader_election_problem, 33, 2, true},
        AttackCase{"leader-honest", leader_election_problem, 33, 0, false},
        AttackCase{"spanning-trunc", spanning_tree_problem, 33, 2, true},
        AttackCase{"spanning-honest", spanning_tree_problem, 33, 0, false},
        AttackCase{"odd-n-trunc", odd_n_problem, 33, 2, true},
        AttackCase{"odd-n-honest", odd_n_problem, 33, 0, false},
        AttackCase{"matching-trunc", max_matching_problem, 33, 2, true},
        AttackCase{"matching-honest", max_matching_problem, 33, 0, false}),
    [](const ::testing::TestParamInfo<AttackCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(GluingAttack, ThresholdTracksLogN) {
  // For fixed n, the attack must succeed for small b and stop succeeding
  // once 2^b exceeds the sampled id range.
  const int n = 33;
  bool fooled_small = false;
  bool fooled_large = false;
  {
    const GluingOutcome o = run_gluing_attack(odd_n_problem(1), n, 40);
    fooled_small = o.fooled();
  }
  {
    // b = 12: every sampled a in 1..40 has a distinct residue mod 2^12,
    // so colours cannot collide.
    const GluingOutcome o = run_gluing_attack(odd_n_problem(12), n, 40);
    fooled_large = o.fooled();
  }
  EXPECT_TRUE(fooled_small);
  EXPECT_FALSE(fooled_large);
}

TEST(GluingAttack, GluedInstanceInheritsEverything) {
  const GluingProblem problem = leader_election_problem(2);
  const GluingOutcome o = run_gluing_attack(problem, 33, 40);
  ASSERT_TRUE(o.found_collision);
  // The glued graph is a 2n-cycle with two leaders.
  const auto c1_ids = gluing_cycle_ids(33, o.a1, o.b1);
  const auto c2_ids = gluing_cycle_ids(33, o.a2, o.b2);
  EXPECT_EQ(c1_ids.size() + c2_ids.size(), 66u);
}

TEST(GluingAttack, HonestColorsPinDownTheRoot) {
  // Honest scheme: the colour includes the full root id, so the number of
  // colours equals the number of sampled rows.
  const GluingOutcome o = run_gluing_attack(leader_election_problem(0), 33, 20);
  EXPECT_FALSE(o.found_collision);
  EXPECT_GE(o.num_colors, 20u);
}

}  // namespace
}  // namespace lcp::lower
