// Property tests for View::apply_delta: for every mutation kind (edge
// insertion/removal, node/edge relabels, edge weights, proof rewrites,
// node additions) and radii 1-3, patching a cached ball must be BIT-
// IDENTICAL to a fresh ViewExtractor extraction from the mutated host —
// same node order, same edge slots, same adjacency, distances and proofs —
// whenever the patcher claims kPatched or kUnchanged, and the engineered
// frontier-crossing cases must force kFallback.  This is the contract that
// lets IncrementalEngine patch instead of re-extract without the engine
// equivalence corpus ever noticing.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/proof.hpp"
#include "core/view.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace lcp {
namespace {

BitString random_bits(std::mt19937& rng, int max_len) {
  std::uniform_int_distribution<int> len(0, max_len);
  std::uniform_int_distribution<int> bit(0, 1);
  BitString out;
  const int k = len(rng);
  for (int i = 0; i < k; ++i) out.append_bit(bit(rng) != 0);
  return out;
}

Proof random_proof(std::mt19937& rng, int n) {
  Proof p = Proof::empty(n);
  for (BitString& b : p.labels) b = random_bits(rng, 4);
  return p;
}

void expect_views_identical(const View& got, const View& want,
                            const std::string& context) {
  ASSERT_EQ(got.center, want.center) << context;
  ASSERT_EQ(got.radius, want.radius) << context;
  ASSERT_EQ(got.dist, want.dist) << context;
  ASSERT_EQ(got.proofs.size(), want.proofs.size()) << context;
  for (std::size_t i = 0; i < got.proofs.size(); ++i) {
    ASSERT_TRUE(got.proofs[i] == want.proofs[i]) << context << " proof " << i;
  }
  ASSERT_EQ(got.ball.n(), want.ball.n()) << context;
  ASSERT_EQ(got.ball.m(), want.ball.m()) << context;
  for (int v = 0; v < got.ball.n(); ++v) {
    ASSERT_EQ(got.ball.id(v), want.ball.id(v)) << context << " node " << v;
    ASSERT_EQ(got.ball.label(v), want.ball.label(v))
        << context << " node " << v;
    const auto ng = got.ball.neighbors(v);
    const auto nw = want.ball.neighbors(v);
    ASSERT_EQ(ng.size(), nw.size()) << context << " adj " << v;
    for (std::size_t i = 0; i < ng.size(); ++i) {
      ASSERT_EQ(ng[i].to, nw[i].to) << context << " adj " << v << "#" << i;
      ASSERT_EQ(ng[i].edge, nw[i].edge)
          << context << " adj " << v << "#" << i;
    }
  }
  for (int e = 0; e < got.ball.m(); ++e) {
    ASSERT_EQ(got.ball.edge_u(e), want.ball.edge_u(e))
        << context << " edge " << e;
    ASSERT_EQ(got.ball.edge_v(e), want.ball.edge_v(e))
        << context << " edge " << e;
    ASSERT_EQ(got.ball.edge_label(e), want.ball.edge_label(e))
        << context << " edge " << e;
    ASSERT_EQ(got.ball.edge_weight(e), want.ball.edge_weight(e))
        << context << " edge " << e;
  }
  ASSERT_TRUE(views_bit_identical(got, want)) << context;
}

struct PatchCounters {
  int patched = 0;
  int unchanged = 0;
  int fallbacks = 0;
};

/// Applies one delta to every cached view and checks the contract against
/// fresh extraction; falls back (replacing the cached view) when the
/// patcher declines.  `hosts[v]` mirrors ViewExtractor's host capture.
void check_delta_everywhere(const Graph& g, const Proof& p, int radius,
                            const ViewDelta& d, std::vector<View>* views,
                            std::vector<std::vector<int>>* hosts,
                            PatchCounters* counters,
                            const std::string& context) {
  ViewExtractor extractor(g);
  for (int v = 0; v < static_cast<int>(views->size()); ++v) {
    View& cached = (*views)[static_cast<std::size_t>(v)];
    const PatchResult classified = cached.classify_delta(g, d);
    const PatchResult applied = cached.apply_delta(g, d);
    ASSERT_EQ(classified, applied) << context << " centre " << v;
    std::vector<int> fresh_host;
    const View fresh = extractor.extract(p, v, radius, &fresh_host);
    switch (applied) {
      case PatchResult::kPatched:
        ++counters->patched;
        expect_views_identical(cached, fresh,
                               context + " patched centre " +
                                   std::to_string(v));
        ASSERT_EQ((*hosts)[static_cast<std::size_t>(v)], fresh_host)
            << context << " centre " << v;
        break;
      case PatchResult::kUnchanged:
        ++counters->unchanged;
        expect_views_identical(cached, fresh,
                               context + " unchanged centre " +
                                   std::to_string(v));
        ASSERT_EQ((*hosts)[static_cast<std::size_t>(v)], fresh_host)
            << context << " centre " << v;
        break;
      case PatchResult::kFallback:
        ++counters->fallbacks;
        cached = fresh;
        (*hosts)[static_cast<std::size_t>(v)] = fresh_host;
        break;
    }
  }
}

/// The randomized walk: mutate (g, p) one op at a time, patch every cached
/// view, and compare against fresh extraction after each op.
void fuzz_patching(Graph g, int radius, std::uint32_t seed, int trials,
                   PatchCounters* totals = nullptr) {
  std::mt19937 rng(seed);
  Proof p = random_proof(rng, g.n());

  std::vector<View> views;
  std::vector<std::vector<int>> hosts;
  {
    ViewExtractor extractor(g);
    for (int v = 0; v < g.n(); ++v) {
      std::vector<int> host;
      views.push_back(extractor.extract(p, v, radius, &host));
      hosts.push_back(std::move(host));
    }
  }

  PatchCounters counters;
  NodeId next_id = g.max_id() + 1;
  for (int trial = 0; trial < trials; ++trial) {
    const std::string context =
        "radius " + std::to_string(radius) + " seed " +
        std::to_string(seed) + " trial " + std::to_string(trial);
    std::uniform_int_distribution<int> kind(0, 6);
    std::uniform_int_distribution<int> node(0, g.n() - 1);
    switch (kind(rng)) {
      case 0: {  // edge insertion
        int u = -1;
        int v = -1;
        for (int tries = 0; tries < 16; ++tries) {
          const int a = node(rng);
          const int b = node(rng);
          if (a != b && !g.has_edge(a, b)) {
            u = a;
            v = b;
            break;
          }
        }
        if (u < 0) continue;
        const std::uint64_t label = rng() % 4;
        const std::int64_t weight = static_cast<std::int64_t>(rng() % 7) - 3;
        g.add_edge(u, v, label, weight);
        check_delta_everywhere(
            g, p, radius,
            ViewDelta{ViewDelta::Kind::kAddEdge, u, v, label, weight},
            &views, &hosts, &counters, context + " add-edge");
        break;
      }
      case 1: {  // edge removal
        if (g.m() <= 2) continue;
        const int e = static_cast<int>(rng() % static_cast<unsigned>(g.m()));
        const int u = g.edge_u(e);
        const int v = g.edge_v(e);
        g.remove_edge(u, v);
        check_delta_everywhere(
            g, p, radius, ViewDelta{ViewDelta::Kind::kRemoveEdge, u, v, 0, 0},
            &views, &hosts, &counters, context + " remove-edge");
        break;
      }
      case 2: {  // node relabel
        const int u = node(rng);
        const std::uint64_t label = rng() % 5;
        g.set_label(u, label);
        check_delta_everywhere(
            g, p, radius,
            ViewDelta{ViewDelta::Kind::kNodeLabel, u, -1, label, 0}, &views,
            &hosts, &counters, context + " relabel");
        break;
      }
      case 3: {  // edge relabel
        if (g.m() == 0) continue;
        const int e = static_cast<int>(rng() % static_cast<unsigned>(g.m()));
        const int u = g.edge_u(e);
        const int v = g.edge_v(e);
        const std::uint64_t label = rng() % 5;
        g.set_edge_label(e, label);
        check_delta_everywhere(
            g, p, radius,
            ViewDelta{ViewDelta::Kind::kEdgeLabel, u, v, label, 0}, &views,
            &hosts, &counters, context + " edge-relabel");
        break;
      }
      case 4: {  // edge weight
        if (g.m() == 0) continue;
        const int e = static_cast<int>(rng() % static_cast<unsigned>(g.m()));
        const int u = g.edge_u(e);
        const int v = g.edge_v(e);
        const std::int64_t weight = static_cast<std::int64_t>(rng() % 9) - 4;
        g.set_edge_weight(e, weight);
        check_delta_everywhere(
            g, p, radius,
            ViewDelta{ViewDelta::Kind::kEdgeWeight, u, v, 0, weight}, &views,
            &hosts, &counters, context + " edge-weight");
        break;
      }
      case 5: {  // proof rewrite
        const int u = node(rng);
        const BitString bits = random_bits(rng, 4);
        p.labels[static_cast<std::size_t>(u)] = bits;
        ViewExtractor extractor(g);
        for (int v = 0; v < static_cast<int>(views.size()); ++v) {
          View& cached = views[static_cast<std::size_t>(v)];
          const PatchResult r = cached.patch_proof(g, u, bits);
          const View fresh = extractor.extract(p, v, radius);
          if (r == PatchResult::kPatched) ++counters.patched;
          expect_views_identical(cached, fresh, context + " reproof centre " +
                                                    std::to_string(v));
        }
        break;
      }
      default: {  // node addition
        const int v = g.add_node(next_id++, rng() % 3);
        p.labels.emplace_back();
        const ViewDelta d{ViewDelta::Kind::kAddNode, v, -1, g.label(v), 0};
        check_delta_everywhere(g, p, radius, d, &views, &hosts, &counters,
                               context + " add-node");
        // The newborn's own view is the isolated singleton.
        views.push_back(make_isolated_view(g, p, v, radius));
        hosts.push_back({v});
        ViewExtractor extractor(g);
        const View fresh = extractor.extract(p, v, radius);
        expect_views_identical(views.back(), fresh, context + " newborn");
        break;
      }
    }
  }

  // The walk must have exercised both patching and fallback.
  EXPECT_GT(counters.patched, 0)
      << "radius " << radius << " seed " << seed;
  EXPECT_GT(counters.fallbacks, 0)
      << "radius " << radius << " seed " << seed;
  if (totals != nullptr) {
    totals->patched += counters.patched;
    totals->unchanged += counters.unchanged;
    totals->fallbacks += counters.fallbacks;
  }
}

TEST(ViewPatch, PropertyRadiusOneToThreeRandomConnected) {
  PatchCounters totals;
  for (int radius = 1; radius <= 3; ++radius) {
    for (std::uint32_t seed = 1; seed <= 3; ++seed) {
      fuzz_patching(gen::random_connected(20, 0.1, seed), radius, seed, 70,
                    &totals);
    }
  }
  // Patching must carry real weight, not degenerate into fallback.
  EXPECT_GT(totals.patched, totals.fallbacks / 4);
}

TEST(ViewPatch, PropertyGridAndTree) {
  for (int radius = 1; radius <= 3; ++radius) {
    fuzz_patching(gen::grid(4, 5), radius, 11, 70);
    fuzz_patching(gen::random_tree(18, 7), radius, 13, 70);
  }
}

// ---------------------------------------------------------------------------
// Engineered frontier cases: the fallbacks that MUST happen.
// ---------------------------------------------------------------------------

TEST(ViewPatch, FrontierEdgeToOutsideIsUnchanged) {
  // Path 1-2-3-4-5-6, centre node 0 (id 1), radius 2: node 2 (id 3) is on
  // the frontier.  An edge from the frontier to id 5 (outside) leaves the
  // ball untouched.
  Graph g = gen::path(6);
  const Proof p = Proof::empty(6);
  View view = extract_view(g, p, 0, 2);
  g.add_edge(2, 4);
  ASSERT_EQ(view.apply_delta(g, ViewDelta{ViewDelta::Kind::kAddEdge, 2, 4,
                                          0, 1}),
            PatchResult::kUnchanged);
  expect_views_identical(view, extract_view(g, p, 0, 2), "frontier add");
}

TEST(ViewPatch, InteriorEdgeToOutsideForcesFallback) {
  // Same path, but the new edge leaves from the interior (node 1, dist 1):
  // id 6 enters the ball at distance 2 — membership grows.
  Graph g = gen::path(6);
  const Proof p = Proof::empty(6);
  View view = extract_view(g, p, 0, 2);
  g.add_edge(1, 5);
  ASSERT_EQ(view.classify_delta(g, ViewDelta{ViewDelta::Kind::kAddEdge, 1, 5,
                                             0, 1}),
            PatchResult::kFallback);
  const View fresh = extract_view(g, p, 0, 2);
  EXPECT_FALSE(views_bit_identical(view, fresh));
  EXPECT_GT(fresh.ball.n(), view.ball.n());
}

TEST(ViewPatch, ShortcutEdgeForcesFallback) {
  // Cycle of 8, radius 3 from node 0: nodes 3 hops away exist on both
  // sides; a chord from the centre to its distance-3 node shrinks that
  // distance to 1.
  Graph g = gen::cycle(8);
  const Proof p = Proof::empty(8);
  View view = extract_view(g, p, 0, 3);
  g.add_edge(0, 3);
  ASSERT_EQ(view.classify_delta(g, ViewDelta{ViewDelta::Kind::kAddEdge, 0, 3,
                                             0, 1}),
            PatchResult::kFallback);
  const View fresh = extract_view(g, p, 0, 3);
  EXPECT_FALSE(views_bit_identical(view, fresh));
}

TEST(ViewPatch, BridgeRemovalForcesFallback) {
  // Removing the only path to a subtree must fall back: distances change
  // (members leave the ball entirely).
  Graph g = gen::path(5);
  const Proof p = Proof::empty(5);
  View view = extract_view(g, p, 0, 3);
  g.remove_edge(1, 2);
  ASSERT_EQ(view.classify_delta(g, ViewDelta{ViewDelta::Kind::kRemoveEdge, 1,
                                             2, 0, 0}),
            PatchResult::kFallback);
  const View fresh = extract_view(g, p, 0, 3);
  EXPECT_FALSE(views_bit_identical(view, fresh));
  EXPECT_LT(fresh.ball.n(), view.ball.n());
}

TEST(ViewPatch, SameLevelEdgePatchesInPlace) {
  // Grid corners: the two neighbours of corner 0 sit at distance 1 from
  // it; joining them is a same-level chord — patched, bit-identical.
  Graph g = gen::grid(3, 3);
  const Proof p = Proof::empty(9);
  View view = extract_view(g, p, 0, 2);
  // Corner 0's neighbours in a 3x3 grid are dense nodes 1 and 3.
  g.add_edge(1, 3);
  ASSERT_EQ(view.apply_delta(g, ViewDelta{ViewDelta::Kind::kAddEdge, 1, 3,
                                          0, 1}),
            PatchResult::kPatched);
  expect_views_identical(view, extract_view(g, p, 0, 2), "same-level add");
}

TEST(ViewPatch, RedundantParentRemovalPatchesInPlace) {
  // Diamond: 0-1, 0-2, 1-3, 2-3.  From centre 0 both 1 and 2 are parents
  // of 3; removing the LATER parent edge (2-3) keeps 3's discoverer (node
  // 1, smaller ball index) and patches cleanly.
  Graph g = gen::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const Proof p = Proof::empty(4);
  View view = extract_view(g, p, 0, 2);
  g.remove_edge(2, 3);
  ASSERT_EQ(view.apply_delta(g, ViewDelta{ViewDelta::Kind::kRemoveEdge, 2, 3,
                                          0, 0}),
            PatchResult::kPatched);
  expect_views_identical(view, extract_view(g, p, 0, 2),
                         "redundant parent removal");
}

TEST(ViewPatch, DiscovererRemovalForcesFallback) {
  // Same diamond, but removing the FIRST parent edge (1-3): node 3 keeps
  // distance 2 via node 2, yet its BFS discovery slot changes, so bit-
  // identity demands re-extraction.
  Graph g = gen::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const Proof p = Proof::empty(4);
  View view = extract_view(g, p, 0, 2);
  g.remove_edge(1, 3);
  ASSERT_EQ(view.classify_delta(g, ViewDelta{ViewDelta::Kind::kRemoveEdge, 1,
                                             3, 0, 0}),
            PatchResult::kFallback);
}

TEST(ViewPatch, IsolatedNodeAdditionIsUnchangedEverywhereElse) {
  Graph g = gen::cycle(5);
  Proof p = Proof::empty(5);
  View view = extract_view(g, p, 0, 2);
  const int v = g.add_node(99);
  p.labels.emplace_back();
  ASSERT_EQ(view.apply_delta(g, ViewDelta{ViewDelta::Kind::kAddNode, v, -1,
                                          0, 0}),
            PatchResult::kUnchanged);
  expect_views_identical(view, extract_view(g, p, 0, 2), "after add-node");
  expect_views_identical(make_isolated_view(g, p, v, 2),
                         extract_view(g, p, v, 2), "newborn view");
}

}  // namespace
}  // namespace lcp