// MetricRegistry / LatencyHistogram correctness: percentile extraction is
// pinned against a brute-force sorted reference (same-bucket guarantee),
// bucket boundaries are exact powers of two, and the relaxed-atomic
// update path survives a multithreaded hammer (run under TSan in CI).
#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace lcp::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket geometry.
// ---------------------------------------------------------------------------

TEST(LatencyHistogramBuckets, ZeroHasItsOwnBucket) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_lower(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(0), 0u);
}

TEST(LatencyHistogramBuckets, PowersOfTwoStartNewBuckets) {
  // Bucket i >= 1 covers [2^(i-1), 2^i).
  for (int i = 1; i < LatencyHistogram::kBuckets - 1; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    const std::uint64_t hi = (std::uint64_t{1} << i) - 1;
    EXPECT_EQ(LatencyHistogram::bucket_index(lo), i) << "lo of bucket " << i;
    EXPECT_EQ(LatencyHistogram::bucket_index(hi), i) << "hi of bucket " << i;
    EXPECT_EQ(LatencyHistogram::bucket_lower(i), lo);
    EXPECT_EQ(LatencyHistogram::bucket_upper(i), hi);
  }
}

TEST(LatencyHistogramBuckets, HugeValuesSaturateTheLastBucket) {
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::kBuckets - 1),
            ~std::uint64_t{0});
}

// ---------------------------------------------------------------------------
// Percentiles vs a brute-force sorted reference.
// ---------------------------------------------------------------------------

std::uint64_t brute_force_percentile(std::vector<std::uint64_t> samples,
                                     double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: the ceil(q/100 * N)-th sample (1-based), clamped.
  const double rank_real = q / 100.0 * static_cast<double>(samples.size());
  std::size_t rank = static_cast<std::size_t>(rank_real);
  if (static_cast<double>(rank) < rank_real) ++rank;
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

/// The histogram quantises to buckets, so the guarantee under test is:
/// percentile(q) lands in the same power-of-two bucket as the true
/// nearest-rank sample, and never exceeds the recorded maximum.
void check_against_reference(const std::vector<std::uint64_t>& samples) {
  LatencyHistogram hist;
  for (std::uint64_t s : samples) hist.record_ns(s);
  ASSERT_EQ(hist.count(), samples.size());
  for (double q : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const std::uint64_t expect = brute_force_percentile(samples, q);
    const std::uint64_t got = hist.percentile(q);
    EXPECT_EQ(LatencyHistogram::bucket_index(got),
              LatencyHistogram::bucket_index(expect))
        << "q=" << q << " got=" << got << " expect=" << expect;
    EXPECT_LE(got, hist.max_ns());
  }
}

TEST(LatencyHistogramPercentiles, UniformSamples) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(std::uniform_int_distribution<std::uint64_t>(
        0, 1'000'000)(rng));
  }
  check_against_reference(samples);
}

TEST(LatencyHistogramPercentiles, HeavyTailedSamples) {
  // Latencies in the wild: a tight mode with a long tail.  Exponentiate a
  // uniform draw so the samples span many buckets.
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    const double e = std::uniform_real_distribution<double>(0, 30)(rng);
    samples.push_back(static_cast<std::uint64_t>(1) << static_cast<int>(e));
  }
  check_against_reference(samples);
}

TEST(LatencyHistogramPercentiles, ConstantAndTinySamples) {
  check_against_reference({42});
  check_against_reference({0, 0, 0});
  check_against_reference({1000, 1000, 1000, 1000});
  check_against_reference({1, 2, 3});
  check_against_reference({7, 7, 7, 1'000'000'000});
}

TEST(LatencyHistogramPercentiles, EmptyHistogramIsAllZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum_ns(), 0u);
  EXPECT_EQ(hist.min_ns(), 0u);
  EXPECT_EQ(hist.max_ns(), 0u);
  EXPECT_EQ(hist.percentile(50), 0u);
  EXPECT_EQ(hist.percentile(99), 0u);
}

TEST(LatencyHistogramPercentiles, MinMaxSumAreExact) {
  LatencyHistogram hist;
  hist.record_ns(5);
  hist.record_ns(900);
  hist.record_ns(17);
  EXPECT_EQ(hist.min_ns(), 5u);
  EXPECT_EQ(hist.max_ns(), 900u);
  EXPECT_EQ(hist.sum_ns(), 922u);
}

// ---------------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------------

TEST(MetricRegistry, RegistrationIsIdempotentPerKind) {
  MetricRegistry registry;
  Counter& c1 = registry.counter("engine.test.runs");
  Counter& c2 = registry.counter("engine.test.runs");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);

  LatencyHistogram& h1 = registry.histogram("session.test.latency");
  LatencyHistogram& h2 = registry.histogram("session.test.latency");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricRegistry, CrossKindCollisionThrows) {
  MetricRegistry registry;
  registry.counter("engine.test.runs");
  EXPECT_THROW(registry.gauge("engine.test.runs"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("engine.test.runs"),
               std::invalid_argument);
  registry.gauge("store.test.depth");
  EXPECT_THROW(registry.counter("store.test.depth"), std::invalid_argument);
}

TEST(MetricRegistry, DerivedGaugesEvaluateAtSnapshotTime) {
  MetricRegistry registry;
  double live = 1.0;
  registry.derived("store.test.rate", [&live] { return live; });
  MetricSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.0);
  live = 2.5;
  snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.5);
}

TEST(MetricRegistry, DerivedReplacesSameNameAndRemoveOwnedWithdraws) {
  MetricRegistry registry;
  const int owner_a = 0, owner_b = 0;
  registry.derived("pool.test.lanes", [] { return 1.0; }, &owner_a);
  // Re-attaching (an engine whose pool grew) replaces, not duplicates.
  registry.derived("pool.test.lanes", [] { return 4.0; }, &owner_b);
  registry.derived("pool.test.busy", [] { return 9.0; }, &owner_b);
  MetricSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges[1].value, 4.0);  // sorted: busy, lanes

  registry.remove_owned(&owner_b);
  snap = registry.snapshot();
  EXPECT_TRUE(snap.gauges.empty());
}

TEST(MetricRegistry, SnapshotCarriesHistogramPercentiles) {
  MetricRegistry registry;
  LatencyHistogram& hist = registry.histogram("session.test.latency");
  for (int i = 1; i <= 100; ++i) {
    hist.record_ns(static_cast<std::uint64_t>(i) * 1000);
  }
  const MetricSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& h = snap.histograms[0];
  EXPECT_EQ(h.count, 100u);
  EXPECT_LE(h.p50_ns, h.p90_ns);
  EXPECT_LE(h.p90_ns, h.p99_ns);
  EXPECT_LE(h.p99_ns, h.max_ns);
  EXPECT_TRUE(snap.has("session.test.latency"));
  EXPECT_FALSE(snap.has("session.test.nope"));
}

TEST(MetricRegistry, JsonExportMentionsEveryMetric) {
  MetricRegistry registry;
  registry.counter("engine.test.runs").add(2);
  registry.gauge("store.test.depth").set(3.5);
  registry.histogram("session.test.latency").record_ns(1234);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"engine.test.runs\""), std::string::npos);
  EXPECT_NE(json.find("\"store.test.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"session.test.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Multithreaded hammer: the relaxed-atomic contract under TSan.
// ---------------------------------------------------------------------------

TEST(MetricRegistryThreads, ConcurrentUpdatesLoseNothing) {
  MetricRegistry registry;
  Counter& counter = registry.counter("engine.test.hits");
  LatencyHistogram& hist = registry.histogram("engine.test.latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.record_ns(std::uniform_int_distribution<std::uint64_t>(
            0, 1 << 20)(rng));
      }
    });
  }
  // Snapshots race against the updates by design; they must stay safe.
  for (int i = 0; i < 50; ++i) (void)registry.snapshot();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(MetricRegistryThreads, ConcurrentRegistrationIsSafe) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("engine.shared.c" + std::to_string(i % 10)).add();
        registry.histogram("engine.shared.h" + std::to_string(i % 10))
            .record_ns(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 10u);
  EXPECT_EQ(snap.histograms.size(), 10u);
  for (const auto& c : snap.counters) {
    EXPECT_EQ(c.value, kThreads * 20u) << c.name;
  }
}

}  // namespace
}  // namespace lcp::obs
