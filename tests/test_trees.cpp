// Tree algorithms: centres, AHU codes, the O(n)-bit codec, fixpoint-free
// symmetry, enumeration and counting (Section 6.2 substrate).
#include <gtest/gtest.h>

#include "algo/isomorphism.hpp"
#include "algo/trees.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

TEST(Trees, IsTree) {
  EXPECT_TRUE(is_tree(gen::path(5)));
  EXPECT_TRUE(is_tree(gen::star(6)));
  EXPECT_FALSE(is_tree(gen::cycle(4)));
  EXPECT_FALSE(is_tree(gen::disjoint_union(gen::path(2), gen::path(2))));
}

TEST(Trees, CentersOfPaths) {
  EXPECT_EQ(tree_centers(gen::path(5)).size(), 1u);  // odd path: one centre
  EXPECT_EQ(tree_centers(gen::path(6)).size(), 2u);  // even path: two
  EXPECT_EQ(tree_centers(gen::path(5))[0], 2);
}

TEST(Trees, CenterOfStarIsHub) {
  const auto centers = tree_centers(gen::star(7));
  ASSERT_EQ(centers.size(), 1u);
  EXPECT_EQ(centers[0], 0);
}

TEST(Trees, AhuDistinguishesRootings) {
  const Graph p3 = gen::path(3);
  EXPECT_NE(ahu_code(p3, 0), ahu_code(p3, 1));
  EXPECT_EQ(ahu_code(p3, 0), ahu_code(p3, 2));
}

TEST(Trees, FreeCodeInvariantUnderShuffle) {
  for (std::uint32_t seed = 0; seed < 15; ++seed) {
    const Graph t = gen::random_tree(9, seed);
    const Graph s = gen::shuffle_ids(t, seed + 50);
    EXPECT_EQ(free_tree_code(t), free_tree_code(s));
  }
}

TEST(Trees, FreeCodeSeparatesNonIsomorphicTrees) {
  EXPECT_NE(free_tree_code(gen::path(5)), free_tree_code(gen::star(5)));
}

TEST(Trees, CanonicalEncodingRoundTrips) {
  for (std::uint32_t seed = 0; seed < 15; ++seed) {
    const Graph t = gen::random_tree(8, seed);
    const CanonicalTree canon = canonize_tree(t);
    EXPECT_EQ(canon.structure.size(), 2 * t.n());
    const auto children = decode_tree(canon.structure);
    ASSERT_TRUE(children.has_value());
    EXPECT_EQ(children->size(), static_cast<std::size_t>(t.n()));
    // The position map is a bijection consistent with adjacency.
    const auto parents = tree_parents_from_children(*children);
    for (int e = 0; e < t.m(); ++e) {
      const int pu = canon.position[static_cast<std::size_t>(t.edge_u(e))];
      const int pv = canon.position[static_cast<std::size_t>(t.edge_v(e))];
      EXPECT_TRUE(parents[static_cast<std::size_t>(pu)] == pv ||
                  parents[static_cast<std::size_t>(pv)] == pu);
    }
  }
}

TEST(Trees, DecodeRejectsMalformed) {
  EXPECT_FALSE(decode_tree(BitString::from_string("10")).has_value() ==
               false);  // "10" is the single-node tree: valid
  EXPECT_FALSE(decode_tree(BitString::from_string("1")).has_value());
  EXPECT_FALSE(decode_tree(BitString::from_string("01")).has_value());
  EXPECT_FALSE(decode_tree(BitString::from_string("1010")).has_value());
  EXPECT_TRUE(decode_tree(BitString::from_string("110100")).has_value());
}

TEST(Trees, FixpointFreeMatchesBruteForce) {
  for (int n = 2; n <= 8; ++n) {
    for (const Graph& t : all_free_trees(n)) {
      EXPECT_EQ(tree_fixpoint_free_symmetry(t),
                has_fixpoint_free_automorphism(t))
          << free_tree_code(t);
    }
  }
}

TEST(Trees, FixpointFreeExamples) {
  EXPECT_TRUE(tree_fixpoint_free_symmetry(gen::path(2)));
  EXPECT_TRUE(tree_fixpoint_free_symmetry(gen::path(4)));
  EXPECT_FALSE(tree_fixpoint_free_symmetry(gen::path(5)));  // centre fixed
  EXPECT_FALSE(tree_fixpoint_free_symmetry(gen::star(5)));
}

TEST(Trees, RootedTreeCountsMatchOeisA000081) {
  const unsigned long long expected[] = {0,  1,  1,   2,   4,    9,
                                         20, 48, 115, 286, 719};
  for (int n = 1; n <= 10; ++n) {
    EXPECT_EQ(rooted_trees_count(n), expected[n]) << n;
  }
  EXPECT_EQ(rooted_trees_count(20), 12826228ull);
}

TEST(Trees, FreeTreeEnumerationCountsMatchOeisA000055) {
  const int expected[] = {0, 1, 1, 1, 2, 3, 6, 11, 23};
  for (int n = 1; n <= 8; ++n) {
    EXPECT_EQ(static_cast<int>(all_free_trees(n).size()), expected[n]) << n;
  }
}

TEST(Trees, RootedEnumerationMatchesCounting) {
  for (int n = 1; n <= 8; ++n) {
    EXPECT_EQ(all_rooted_trees(n).size(), rooted_trees_count(n)) << n;
  }
}

TEST(Trees, AsymmetricRootedCountsAreConsistentWithEnumeration) {
  // Count rigid rooted trees by brute force over the enumeration and
  // compare with the generating-function DP.
  for (int n = 1; n <= 8; ++n) {
    unsigned long long rigid = 0;
    for (const Graph& t : all_rooted_trees(n)) {
      // Root is node 0 by construction; rigid = no nontrivial automorphism
      // fixing the root.  For rooted trees: check all automorphisms.
      bool has_root_fixing_nontrivial = false;
      for (const auto& aut : all_automorphisms(t)) {
        bool identity = true;
        for (std::size_t v = 0; v < aut.size(); ++v) {
          if (aut[v] != static_cast<int>(v)) identity = false;
        }
        if (!identity && aut[0] == 0) has_root_fixing_nontrivial = true;
      }
      if (!has_root_fixing_nontrivial) ++rigid;
    }
    EXPECT_EQ(asymmetric_rooted_trees_count(n), rigid) << n;
  }
}

TEST(Trees, AsymmetricRootedGrowth) {
  // log |F_k| = Theta(k): the counts should grow geometrically.
  const auto r10 = asymmetric_rooted_trees_count(10);
  const auto r15 = asymmetric_rooted_trees_count(15);
  const auto r20 = asymmetric_rooted_trees_count(20);
  EXPECT_GT(r15, 4 * r10);
  EXPECT_GT(r20, 4 * r15);
}

}  // namespace
}  // namespace lcp
