// Randomised mutation-sequence fuzz: random graphs x random schemes x
// 100+ random deltas (proof flips, node/edge relabels, edge insertions
// and removals, including churn right at ball boundaries), asserting after
// EVERY batch that IncrementalEngine's RunResult is bit-identical to a
// fresh uncached DirectEngine sweep of the mutated state.
//
// The FourWay* tests run the same stream through the full configuration
// matrix — {view patching, re-extraction} x {pool-sharded, serial
// re-verification} — each on its own (graph, proof, tracker) replica, plus
// a fifth engine whose toggles flip randomly per batch, asserting
// bit-identical verdicts AND identical graph/state fingerprints across all
// replicas after every batch.  ChurnStreamMatrix drives the matrix with
// the preferential-attachment + sliding-window generator from bench/.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/churn_stream.hpp"
#include "core/delta.hpp"
#include "core/incremental.hpp"
#include "core/registry.hpp"
#include "graph/generators.hpp"
#include "schemes/cycle_certified.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

BitString random_bits(std::mt19937& rng, int max_len) {
  std::uniform_int_distribution<int> len(0, max_len);
  std::uniform_int_distribution<int> bit(0, 1);
  BitString out;
  const int k = len(rng);
  for (int i = 0; i < k; ++i) out.append_bit(bit(rng) != 0);
  return out;
}

/// One random mutation appended to the batch; returns false when the
/// graph state offers no legal op of the drawn kind.
bool push_random_op(MutationBatch& batch, const Graph& g, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind_dist(0, 5);
  std::uniform_int_distribution<int> node(0, g.n() - 1);
  switch (kind_dist(rng)) {
    case 0: {  // proof flip
      batch.set_proof_label(node(rng), random_bits(rng, 4));
      return true;
    }
    case 1: {  // node relabel
      std::uniform_int_distribution<int> label(0, 3);
      batch.set_node_label(node(rng), static_cast<std::uint64_t>(label(rng)));
      return true;
    }
    case 2: {  // edge relabel
      if (g.m() == 0) return false;
      std::uniform_int_distribution<int> edge(0, g.m() - 1);
      const int e = edge(rng);
      std::uniform_int_distribution<int> label(0, 3);
      batch.set_edge_label(g.edge_u(e), g.edge_v(e),
                           static_cast<std::uint64_t>(label(rng)));
      return true;
    }
    case 3: {  // edge weight
      if (g.m() == 0) return false;
      std::uniform_int_distribution<int> edge(0, g.m() - 1);
      const int e = edge(rng);
      std::uniform_int_distribution<int> weight(-3, 3);
      batch.set_edge_weight(g.edge_u(e), g.edge_v(e), weight(rng));
      return true;
    }
    case 4: {  // edge insertion
      for (int attempt = 0; attempt < 8; ++attempt) {
        const int u = node(rng);
        const int v = node(rng);
        if (u != v && !g.has_edge(u, v)) {
          batch.add_edge(u, v);
          return true;
        }
      }
      return false;
    }
    default: {  // edge removal (keep a few edges around)
      if (g.m() <= 2) return false;
      std::uniform_int_distribution<int> edge(0, g.m() - 1);
      const int e = edge(rng);
      batch.remove_edge(g.edge_u(e), g.edge_v(e));
      return true;
    }
  }
}

void expect_equal(const RunResult& expected, const RunResult& actual,
                  const std::string& context) {
  ASSERT_EQ(expected.all_accept, actual.all_accept) << context;
  ASSERT_EQ(expected.rejecting, actual.rejecting) << context;
}

void fuzz_scheme(const Scheme& scheme, Graph g, std::uint32_t seed,
                 int batches) {
  std::mt19937 rng(seed);
  Proof p = Proof::empty(g.n());
  if (const auto honest = scheme.prove(g); honest.has_value()) p = *honest;

  const int radius = scheme.verifier().radius();
  DeltaTracker tracker(g, p, radius);
  IncrementalEngine engine;
  ASSERT_TRUE(engine.attach_tracker(&tracker));
  DirectEngine fresh({/*cache_views=*/false});

  expect_equal(fresh.run(g, p, scheme.verifier()),
               engine.run(g, p, scheme.verifier()),
               scheme.name() + "/initial");

  std::uniform_int_distribution<int> ops_per_batch(1, 4);
  for (int round = 0; round < batches; ++round) {
    // Ops are drawn against the current graph state, so each becomes its
    // own single-op batch; several batches pile up between runs, which
    // exercises the engine's multi-record merge exactly like one big
    // batch would.
    const int ops = ops_per_batch(rng);
    for (int i = 0; i < ops; ++i) {
      MutationBatch batch;
      if (push_random_op(batch, g, rng)) tracker.apply(batch);
    }
    expect_equal(
        fresh.run(g, p, scheme.verifier()),
        engine.run(g, p, scheme.verifier()),
        scheme.name() + "/round-" + std::to_string(round));
  }

  const auto& stats = engine.stats();
  EXPECT_GE(stats.incremental_runs, 1u) << scheme.name();
  engine.attach_tracker(nullptr);
}

TEST(IncrementalFuzz, BipartiteOnRandomGraphs) {
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    fuzz_scheme(schemes::BipartiteScheme(),
                gen::random_connected(24, 0.12, seed), seed, 120);
  }
}

TEST(IncrementalFuzz, LeaderElectionOnCycles) {
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    Graph g = gen::cycle(30);
    g.set_label(static_cast<int>(seed) * 3, schemes::kLeaderFlag);
    fuzz_scheme(schemes::LeaderElectionScheme(), std::move(g), seed + 10,
                120);
  }
}

TEST(IncrementalFuzz, ParityOnRandomGraphs) {
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    fuzz_scheme(schemes::ParityScheme(/*odd=*/true),
                gen::random_graph(20, 0.15, seed), seed + 20, 120);
  }
}

TEST(IncrementalFuzz, AcyclicRadiusTwoOnTrees) {
  // Radius-2 verifier: ball-membership changes two hops out.
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    fuzz_scheme(schemes::AcyclicScheme(), gen::random_tree(26, seed),
                seed + 30, 120);
  }
}

TEST(IncrementalFuzz, DenseGridWithHeavyChurn) {
  fuzz_scheme(schemes::BipartiteScheme(), gen::grid(5, 5), 99, 150);
}

// ---------------------------------------------------------------------------
// The patching x sharding matrix.
// ---------------------------------------------------------------------------

/// One engine configuration bound to its own replica of the mutated pair.
/// Heap-allocated: the tracker holds references into graph/proof, so the
/// lane's address must never move once constructed.
struct MatrixLane {
  std::string name;
  Graph graph;
  Proof proof;
  std::unique_ptr<DeltaTracker> tracker;
  std::unique_ptr<IncrementalEngine> engine;
};

std::unique_ptr<MatrixLane> make_lane(const std::string& name, const Graph& g,
                                      const Proof& p, int horizon,
                                      IncrementalEngineOptions options) {
  auto lane = std::make_unique<MatrixLane>();
  lane->name = name;
  lane->graph = g;
  lane->proof = p;
  lane->tracker =
      std::make_unique<DeltaTracker>(lane->graph, lane->proof, horizon);
  lane->engine = std::make_unique<IncrementalEngine>(std::move(options));
  EXPECT_TRUE(lane->engine->attach_tracker(lane->tracker.get()));
  return lane;
}

/// Replays one batch stream through all four {patch} x {shard} lanes plus a
/// per-batch random-toggle lane, checking bit-identical verdicts and
/// fingerprints against a fresh DirectEngine sweep after every batch.
/// `make_batch(it, g, &batch)` sees lane 0's graph; every lane applies the
/// identical batch, so the replicas evolve in lockstep.
template <typename MakeBatch>
void fuzz_matrix(const Scheme& scheme, const Graph& start, std::uint32_t seed,
                 int batches, MakeBatch&& make_batch) {
  Proof p0 = Proof::empty(start.n());
  if (const auto honest = scheme.prove(start); honest.has_value()) {
    p0 = *honest;
  }
  const int radius = scheme.verifier().radius();

  // shard_min_centers = 0 forces even tiny dirty sets onto the pool, so
  // the sharded lanes genuinely exercise it at fuzz sizes.
  std::vector<std::unique_ptr<MatrixLane>> lanes;
  lanes.push_back(make_lane("patch+serial", start, p0, radius,
                            {.patch_views = true, .shard_threads = 0}));
  lanes.push_back(make_lane("patch+shard", start, p0, radius,
                            {.patch_views = true,
                             .shard_threads = 3,
                             .shard_min_centers = 0}));
  lanes.push_back(make_lane("reextract+serial", start, p0, radius,
                            {.patch_views = false, .shard_threads = 0}));
  lanes.push_back(make_lane("reextract+shard", start, p0, radius,
                            {.patch_views = false,
                             .shard_threads = 3,
                             .shard_min_centers = 0}));
  lanes.push_back(make_lane("random-toggle", start, p0, radius,
                            {.shard_min_centers = 0}));

  DirectEngine fresh({/*cache_views=*/false});
  std::mt19937 toggle_rng(seed * 7 + 1);
  for (int it = 0; it < batches; ++it) {
    MutationBatch batch;
    make_batch(it, static_cast<const Graph&>(lanes[0]->graph), &batch);
    if (batch.empty()) continue;

    lanes[4]->engine->set_patch_views(toggle_rng() % 2 == 0);
    lanes[4]->engine->set_shard_threads(toggle_rng() % 2 == 0 ? 3 : 0);

    const RunResult want = [&] {
      lanes[0]->tracker->apply(batch);
      return fresh.run(lanes[0]->graph, lanes[0]->proof, scheme.verifier());
    }();
    const std::uint64_t want_graph_fp = graph_fingerprint(lanes[0]->graph);
    const std::uint64_t want_state_fp =
        lanes[0]->tracker->state_fingerprint();
    ASSERT_EQ(want_state_fp, DeltaTracker::state_fingerprint_of(
                                 lanes[0]->graph, lanes[0]->proof))
        << "tracker fingerprint drift at batch " << it;

    for (std::size_t lane_idx = 0; lane_idx < lanes.size(); ++lane_idx) {
      MatrixLane& lane = *lanes[lane_idx];
      if (lane_idx > 0) lane.tracker->apply(batch);
      const RunResult got =
          lane.engine->run(lane.graph, lane.proof, scheme.verifier());
      ASSERT_EQ(want.all_accept, got.all_accept)
          << lane.name << " batch " << it;
      ASSERT_EQ(want.rejecting, got.rejecting) << lane.name << " batch " << it;
      ASSERT_EQ(want_graph_fp, graph_fingerprint(lane.graph))
          << lane.name << " batch " << it;
      ASSERT_EQ(want_state_fp, lane.tracker->state_fingerprint())
          << lane.name << " batch " << it;
    }
  }

  // The stream must actually have exercised both mechanisms.
  EXPECT_GT(lanes[0]->engine->stats().views_patched, 0u);
  EXPECT_GT(lanes[1]->engine->stats().sharded_rounds, 0u);
  EXPECT_GT(lanes[2]->engine->stats().reextractions, 0u);
  for (auto& lane : lanes) lane->engine->attach_tracker(nullptr);
}

TEST(IncrementalFuzz, FourWayMatrixBipartite) {
  std::mt19937 rng(424242);
  fuzz_matrix(schemes::BipartiteScheme(),
              gen::random_connected(22, 0.12, 5), 5, 110,
              [&rng](int, const Graph& g, MutationBatch* batch) {
                // One op per batch: later draws would need to see the
                // post-op graph, which they cannot inside one batch.
                for (int tries = 0; tries < 4 && batch->empty(); ++tries) {
                  (void)push_random_op(*batch, g, rng);
                }
              });
}

TEST(IncrementalFuzz, FourWayMatrixAcyclicRadiusTwo) {
  std::mt19937 rng(777);
  fuzz_matrix(schemes::AcyclicScheme(), gen::random_tree(24, 3), 7, 110,
              [&rng](int, const Graph& g, MutationBatch* batch) {
                (void)push_random_op(*batch, g, rng);
              });
}

TEST(IncrementalFuzz, FourWayMatrixConjunction) {
  // A composed scheme (core/compose.hpp) is a first-class Scheme: the
  // whole patching x sharding matrix must stay bit-identical under churn
  // when the verifier is a conjunction hosted at the max component radius
  // (bipartite r=1, acyclic r=2), including the random-proof ops that
  // tamper the concatenated labels.
  const auto scheme = builtin_registry().build("bipartite & acyclic");
  std::mt19937 rng(31415);
  fuzz_matrix(*scheme, gen::random_tree(22, 9), 13, 100,
              [&rng](int, const Graph& g, MutationBatch* batch) {
                (void)push_random_op(*batch, g, rng);
              });
}

TEST(IncrementalFuzz, ChurnStreamMatrix) {
  // Preferential attachment + sliding-window expiry (bench/churn_stream.hpp)
  // with occasional proof tampering layered on top; node growth, frontier
  // crossings, and window expiries all flow through the matrix.
  bench::ChurnStream stream({.grow_probability = 0.4,
                             .attach_edges = 2,
                             .churn_edges = 3,
                             .window = 8,
                             .seed = 99});
  std::mt19937 rng(2026);
  fuzz_matrix(schemes::BipartiteScheme(),
              gen::random_connected(20, 0.1, 11), 11, 90,
              [&](int it, const Graph& g, MutationBatch* batch) {
                stream.next(it, g, batch);
                if (rng() % 4 == 0 && g.n() > 0) {
                  batch->set_proof_label(
                      static_cast<int>(rng() % static_cast<unsigned>(g.n())),
                      random_bits(rng, 3));
                }
              });
}

}  // namespace
}  // namespace lcp
