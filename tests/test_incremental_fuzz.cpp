// Randomised mutation-sequence fuzz: random graphs x random schemes x
// 100+ random deltas (proof flips, node/edge relabels, edge insertions
// and removals, including churn right at ball boundaries), asserting after
// EVERY batch that IncrementalEngine's RunResult is bit-identical to a
// fresh uncached DirectEngine sweep of the mutated state.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/delta.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "schemes/cycle_certified.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

BitString random_bits(std::mt19937& rng, int max_len) {
  std::uniform_int_distribution<int> len(0, max_len);
  std::uniform_int_distribution<int> bit(0, 1);
  BitString out;
  const int k = len(rng);
  for (int i = 0; i < k; ++i) out.append_bit(bit(rng) != 0);
  return out;
}

/// One random mutation appended to the batch; returns false when the
/// graph state offers no legal op of the drawn kind.
bool push_random_op(MutationBatch& batch, const Graph& g, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind_dist(0, 5);
  std::uniform_int_distribution<int> node(0, g.n() - 1);
  switch (kind_dist(rng)) {
    case 0: {  // proof flip
      batch.set_proof_label(node(rng), random_bits(rng, 4));
      return true;
    }
    case 1: {  // node relabel
      std::uniform_int_distribution<int> label(0, 3);
      batch.set_node_label(node(rng), static_cast<std::uint64_t>(label(rng)));
      return true;
    }
    case 2: {  // edge relabel
      if (g.m() == 0) return false;
      std::uniform_int_distribution<int> edge(0, g.m() - 1);
      const int e = edge(rng);
      std::uniform_int_distribution<int> label(0, 3);
      batch.set_edge_label(g.edge_u(e), g.edge_v(e),
                           static_cast<std::uint64_t>(label(rng)));
      return true;
    }
    case 3: {  // edge weight
      if (g.m() == 0) return false;
      std::uniform_int_distribution<int> edge(0, g.m() - 1);
      const int e = edge(rng);
      std::uniform_int_distribution<int> weight(-3, 3);
      batch.set_edge_weight(g.edge_u(e), g.edge_v(e), weight(rng));
      return true;
    }
    case 4: {  // edge insertion
      for (int attempt = 0; attempt < 8; ++attempt) {
        const int u = node(rng);
        const int v = node(rng);
        if (u != v && !g.has_edge(u, v)) {
          batch.add_edge(u, v);
          return true;
        }
      }
      return false;
    }
    default: {  // edge removal (keep a few edges around)
      if (g.m() <= 2) return false;
      std::uniform_int_distribution<int> edge(0, g.m() - 1);
      const int e = edge(rng);
      batch.remove_edge(g.edge_u(e), g.edge_v(e));
      return true;
    }
  }
}

void expect_equal(const RunResult& expected, const RunResult& actual,
                  const std::string& context) {
  ASSERT_EQ(expected.all_accept, actual.all_accept) << context;
  ASSERT_EQ(expected.rejecting, actual.rejecting) << context;
}

void fuzz_scheme(const Scheme& scheme, Graph g, std::uint32_t seed,
                 int batches) {
  std::mt19937 rng(seed);
  Proof p = Proof::empty(g.n());
  if (const auto honest = scheme.prove(g); honest.has_value()) p = *honest;

  const int radius = scheme.verifier().radius();
  DeltaTracker tracker(g, p, radius);
  IncrementalEngine engine;
  ASSERT_TRUE(engine.attach_tracker(&tracker));
  DirectEngine fresh({/*cache_views=*/false});

  expect_equal(fresh.run(g, p, scheme.verifier()),
               engine.run(g, p, scheme.verifier()),
               scheme.name() + "/initial");

  std::uniform_int_distribution<int> ops_per_batch(1, 4);
  for (int round = 0; round < batches; ++round) {
    // Ops are drawn against the current graph state, so each becomes its
    // own single-op batch; several batches pile up between runs, which
    // exercises the engine's multi-record merge exactly like one big
    // batch would.
    const int ops = ops_per_batch(rng);
    for (int i = 0; i < ops; ++i) {
      MutationBatch batch;
      if (push_random_op(batch, g, rng)) tracker.apply(batch);
    }
    expect_equal(
        fresh.run(g, p, scheme.verifier()),
        engine.run(g, p, scheme.verifier()),
        scheme.name() + "/round-" + std::to_string(round));
  }

  const auto& stats = engine.stats();
  EXPECT_GE(stats.incremental_runs, 1u) << scheme.name();
  engine.attach_tracker(nullptr);
}

TEST(IncrementalFuzz, BipartiteOnRandomGraphs) {
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    fuzz_scheme(schemes::BipartiteScheme(),
                gen::random_connected(24, 0.12, seed), seed, 120);
  }
}

TEST(IncrementalFuzz, LeaderElectionOnCycles) {
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    Graph g = gen::cycle(30);
    g.set_label(static_cast<int>(seed) * 3, schemes::kLeaderFlag);
    fuzz_scheme(schemes::LeaderElectionScheme(), std::move(g), seed + 10,
                120);
  }
}

TEST(IncrementalFuzz, ParityOnRandomGraphs) {
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    fuzz_scheme(schemes::ParityScheme(/*odd=*/true),
                gen::random_graph(20, 0.15, seed), seed + 20, 120);
  }
}

TEST(IncrementalFuzz, AcyclicRadiusTwoOnTrees) {
  // Radius-2 verifier: ball-membership changes two hops out.
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    fuzz_scheme(schemes::AcyclicScheme(), gen::random_tree(26, seed),
                seed + 30, 120);
  }
}

TEST(IncrementalFuzz, DenseGridWithHeavyChurn) {
  fuzz_scheme(schemes::BipartiteScheme(), gen::grid(5, 5), 99, 150);
}

}  // namespace
}  // namespace lcp
