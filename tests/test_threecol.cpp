// Section 6.3: the 3-colouring gadgets.  The gadget law (colourings of
// G_A encode exactly A; G_{A,B} colourable iff A and B intersect) is
// cross-checked against the exact DSATUR solver at small scale.
#include <gtest/gtest.h>

#include "algo/coloring.hpp"
#include "core/incremental.hpp"
#include "lower/threecol.hpp"
#include "schemes/universal.hpp"

namespace lcp::lower {
namespace {

TEST(Pairs, ComplementPartitionsTheSquare) {
  const PairSet a{{0, 0}, {1, 1}};
  const PairSet comp = complement_pairs(1, a);
  EXPECT_EQ(comp.size(), 2u);
  EXPECT_EQ(all_pairs(1).size(), 4u);
  EXPECT_EQ(all_pairs(2).size(), 16u);
}

TEST(Gadget, ColoringsEncodeExactlyA) {
  // k = 1: check every singleton and pair subset A.
  const PairSet universe = all_pairs(1);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const PairSet a{universe[i]};
    const Gadget gadget = build_gadget(1, a);
    const auto colors = k_coloring(gadget.graph, 3);
    ASSERT_TRUE(colors.has_value()) << i;
    EXPECT_TRUE(is_proper_coloring(gadget.graph, *colors));
    EXPECT_EQ(decode_pair(gadget, *colors), universe[i]);
  }
}

TEST(Gadget, EmptyAIsUncolorable) {
  const Gadget gadget = build_gadget(1, {});
  EXPECT_FALSE(k_coloring(gadget.graph, 3).has_value());
}

TEST(Gadget, TwoElementAAllowsBothCodes) {
  const PairSet a{{0, 1}, {1, 0}};
  const Gadget gadget = build_gadget(1, a);
  const auto colors = k_coloring(gadget.graph, 3);
  ASSERT_TRUE(colors.has_value());
  const auto [x, y] = decode_pair(gadget, *colors);
  EXPECT_TRUE((x == 0 && y == 1) || (x == 1 && y == 0));
}

TEST(Joined, ColorableIffIntersecting) {
  // All 2-element A, B over I x I with k = 1, r = 1: solver agrees with
  // the semantic law.
  const PairSet universe = all_pairs(1);
  int checked = 0;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t j = i + 1; j < universe.size(); ++j) {
      const PairSet a{universe[i], universe[j]};
      for (std::size_t p = 0; p < universe.size(); ++p) {
        const PairSet b{universe[p]};
        const JoinedGadget joined = build_joined(1, a, b, 1);
        const bool expect = joined_colorable_semantics(a, b);
        EXPECT_EQ(k_coloring(joined.graph, 3).has_value(), expect)
            << i << "," << j << " vs " << p;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 24);
}

TEST(Joined, ComplementPairIsNeverColorable) {
  const PairSet a{{0, 0}, {1, 1}};
  const PairSet a_bar = complement_pairs(1, a);
  const JoinedGadget joined = build_joined(1, a, a_bar, 1);
  EXPECT_FALSE(joined_colorable_semantics(a, a_bar));
  EXPECT_FALSE(k_coloring(joined.graph, 3).has_value());
}

TEST(Joined, FoolingSetPairColorable) {
  // A != B with A intersecting complement(B): the stitched instance of the
  // paper's fooling argument is colourable.
  const PairSet a{{0, 0}, {1, 1}};
  const PairSet b{{0, 0}, {1, 0}};
  const PairSet b_bar = complement_pairs(1, b);
  EXPECT_TRUE(joined_colorable_semantics(a, b_bar));  // (1,1) survives
  const JoinedGadget joined = build_joined(1, a, b_bar, 1);
  EXPECT_TRUE(k_coloring(joined.graph, 3).has_value());
}

TEST(Joined, WiresPropagatePaletteAcrossTheGap) {
  const PairSet a{{1, 0}};
  const JoinedGadget joined = build_joined(1, a, a, 1);
  const auto colors = k_coloring(joined.graph, 3);
  ASSERT_TRUE(colors.has_value());
  // Rebuild the two gadget halves to locate T/T' and N/N'.
  const Gadget ga = build_gadget(1, a);
  const int shift = joined.ga_size;
  EXPECT_EQ((*colors)[static_cast<std::size_t>(ga.t)],
            (*colors)[static_cast<std::size_t>(shift + ga.t)]);
  EXPECT_EQ((*colors)[static_cast<std::size_t>(ga.n)],
            (*colors)[static_cast<std::size_t>(shift + ga.n)]);
  // Bit nodes agree too: both halves decode the same (x, y).
  for (std::size_t i = 0; i < ga.x_bits.size(); ++i) {
    EXPECT_EQ((*colors)[static_cast<std::size_t>(ga.x_bits[i])],
              (*colors)[static_cast<std::size_t>(shift + ga.x_bits[i])]);
  }
}

TEST(Joined, LayoutUniformAcrossEqualSizedSets) {
  // Equal |A| gives identical node counts — required by the transplant
  // experiment in bench/sec6_threecol.
  const PairSet a{{0, 0}, {1, 1}};
  const PairSet b{{0, 1}, {1, 0}};
  const JoinedGadget ja = build_joined(1, a, complement_pairs(1, a), 2);
  const JoinedGadget jb = build_joined(1, b, complement_pairs(1, b), 2);
  EXPECT_EQ(ja.graph.n(), jb.graph.n());
  EXPECT_EQ(ja.ga_size, jb.ga_size);
}

TEST(Joined, GapScalesWithR) {
  const PairSet a{{0, 0}};
  const JoinedGadget r1 = build_joined(1, a, a, 1);
  const JoinedGadget r3 = build_joined(1, a, a, 3);
  EXPECT_GT(r3.graph.n(), r1.graph.n());
  // Still colourable: the law is r-independent.
  EXPECT_TRUE(k_coloring(r3.graph, 3).has_value());
}

TEST(Transplant, TruncatedSchemeFooledThroughDeltaApi) {
  // The Section 6.3 stitch executed via run_threecol_transplant: the
  // truncated universal scheme accepts the 3-colourable no-instance.
  const PairSet a{{0, 0}, {1, 1}};
  const PairSet b{{0, 0}, {1, 0}};
  const auto scheme = schemes::make_non_3_colorable_scheme(/*trunc=*/64);
  IncrementalEngine engine;
  const ThreecolTransplantOutcome o =
      run_threecol_transplant(1, a, b, 1, *scheme, engine);
  EXPECT_TRUE(o.proofs_exist);
  EXPECT_TRUE(o.all_accept);
  EXPECT_FALSE(o.glued_is_yes);
  EXPECT_TRUE(o.fooled());
  // The delta touched only the first gadget block's surroundings.
  EXPECT_GE(engine.stats().incremental_runs, 1u);
}

TEST(Transplant, HonestSchemeResistsThroughDeltaApi) {
  const PairSet a{{0, 0}, {1, 1}};
  const PairSet b{{0, 0}, {1, 0}};
  const auto scheme = schemes::make_non_3_colorable_scheme(/*trunc=*/0);
  const ThreecolTransplantOutcome o =
      run_threecol_transplant(1, a, b, 1, *scheme);
  EXPECT_TRUE(o.proofs_exist);
  EXPECT_FALSE(o.all_accept);
  EXPECT_FALSE(o.fooled());
}

TEST(Transplant, MismatchedSubsetSizesThrow) {
  const PairSet a{{0, 0}, {1, 1}};
  const PairSet b{{0, 0}};
  const auto scheme = schemes::make_non_3_colorable_scheme(64);
  EXPECT_THROW(run_threecol_transplant(1, a, b, 1, *scheme),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcp::lower
