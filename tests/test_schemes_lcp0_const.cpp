// Table 1(a) LCP(0) and LCP(O(1)) schemes: Eulerian, line graphs,
// bipartiteness, even cycles, s-t reachability and unreachability.
#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/directed.hpp"
#include "graph/generators.hpp"
#include "schemes/lcp0.hpp"
#include "schemes/lcp_const.hpp"

namespace lcp::schemes {
namespace {

TEST(Eulerian, CyclesAreEulerianPathsAreNot) {
  const EulerianScheme scheme;
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::cycle(6)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::complete(5)));
  EXPECT_FALSE(scheme.holds(gen::path(4)));
  EXPECT_FALSE(scheme.prove(gen::path(4)).has_value());
  // Soundness is proof-independent for LCP(0).
  EXPECT_TRUE(rejected(gen::path(4), Proof::empty(4), scheme.verifier()));
}

TEST(Eulerian, ProofSizeIsZero) {
  const EulerianScheme scheme;
  EXPECT_EQ(scheme.prove(gen::cycle(5))->size_bits(), 0);
}

TEST(LineGraphScheme, AcceptsLineGraphsRejectsClaw) {
  const LineGraphScheme scheme;
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::cycle(6)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::complete(3)));
  const Graph claw = gen::star(4);
  EXPECT_FALSE(scheme.holds(claw));
  EXPECT_TRUE(rejected(claw, Proof::empty(4), scheme.verifier()));
}

TEST(LineGraphScheme, RejectionIsLocal) {
  // A big cycle with a claw grafted on: only nodes near the claw reject.
  Graph g = gen::cycle(12);
  const int hub = 0;
  const int leaf1 = g.add_node(100);
  const int leaf2 = g.add_node(101);
  g.add_edge(hub, leaf1);
  g.add_edge(hub, leaf2);
  const LineGraphScheme scheme;
  ASSERT_FALSE(scheme.holds(g));
  const RunResult r =
      default_engine().run(g, Proof::empty(g.n()), scheme.verifier());
  EXPECT_FALSE(r.all_accept);
  EXPECT_LT(r.rejecting.size(), static_cast<std::size_t>(g.n()));
}

TEST(Bipartite, CompletenessAcrossFamilies) {
  const BipartiteScheme scheme;
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::cycle(8)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::grid(3, 4)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::hypercube(4)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::random_tree(12, 3)));
  EXPECT_TRUE(scheme_accepts_own_proof(
      scheme, gen::disjoint_union(gen::cycle(4), gen::path(3))));
}

TEST(Bipartite, ProofIsOneBit) {
  const BipartiteScheme scheme;
  EXPECT_EQ(scheme.prove(gen::grid(4, 4))->size_bits(), 1);
}

TEST(Bipartite, ExhaustiveSoundnessOnOddCycles) {
  // No proof with <= 2 bits per node convinces the verifier on C5/C7.
  const BipartiteScheme scheme;
  EXPECT_FALSE(exists_accepted_proof(gen::cycle(5), scheme.verifier(), 2));
  EXPECT_FALSE(exists_accepted_proof(gen::cycle(3), scheme.verifier(), 2));
}

TEST(Bipartite, ExhaustiveCompletenessMatchesSemantics) {
  EXPECT_TRUE(exists_accepted_proof(gen::cycle(4),
                                    BipartiteScheme().verifier(), 1));
  EXPECT_TRUE(exists_accepted_proof(gen::path(5),
                                    BipartiteScheme().verifier(), 1));
}

TEST(EvenCycle, ParityDecidesAcceptance) {
  const EvenCycleScheme scheme;
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::cycle(8)));
  EXPECT_FALSE(scheme.holds(gen::cycle(7)));
  EXPECT_FALSE(exists_accepted_proof(gen::cycle(7), scheme.verifier(), 1));
}

Graph mark_st(Graph g, int s, int t) {
  g.set_label(s, kSourceLabel);
  g.set_label(t, kTargetLabel);
  return g;
}

TEST(StReachability, PathMarkedWithOneBit) {
  const StReachabilityScheme scheme;
  const Graph g = mark_st(gen::grid(3, 4), 0, 11);
  EXPECT_TRUE(scheme.holds(g));
  const auto proof = scheme.prove(g);
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->size_bits(), 1);
  EXPECT_TRUE(default_engine().run(g, *proof, scheme.verifier()).all_accept);
}

TEST(StReachability, DisconnectedRejectedExhaustively) {
  const StReachabilityScheme scheme;
  const Graph g =
      mark_st(gen::disjoint_union(gen::path(3), gen::path(3)), 0, 5);
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_FALSE(exists_accepted_proof(g, scheme.verifier(), 1));
}

TEST(StReachability, TamperedPathRejected) {
  const StReachabilityScheme scheme;
  const Graph g = mark_st(gen::cycle(8), 0, 4);
  const auto proof = scheme.prove(g);
  ASSERT_TRUE(proof.has_value());
  // Clearing any marked node must break some local count.
  for (int v = 0; v < g.n(); ++v) {
    if (proof->labels[static_cast<std::size_t>(v)].bit(0)) {
      Proof bad = *proof;
      bad.labels[static_cast<std::size_t>(v)] = BitString::from_string("0");
      EXPECT_TRUE(rejected(g, bad, scheme.verifier()));
    }
  }
}

TEST(StUnreachable, PartitionAccepted) {
  const StUnreachableScheme scheme;
  const Graph g =
      mark_st(gen::disjoint_union(gen::cycle(4), gen::cycle(4)), 1, 6);
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
}

TEST(StUnreachable, ConnectedPairRejectedExhaustively) {
  const StUnreachableScheme scheme;
  const Graph g = mark_st(gen::path(5), 0, 4);
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_FALSE(exists_accepted_proof(g, scheme.verifier(), 1));
}

Graph directed_chain_with_back_edge() {
  // Arcs: 0->1->2, and 3->2, 3->0: t=3 unreachable from s=0.
  Graph g = gen::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  directed::add_arc(g, 0, 1);
  directed::add_arc(g, 1, 2);
  directed::add_arc(g, 3, 2);
  directed::add_arc(g, 3, 0);
  g.set_label(0, kSourceLabel);
  g.set_label(3, kTargetLabel);
  return g;
}

TEST(StUnreachableDirected, BackEdgesDoNotBreakTheCut) {
  const StUnreachableDirectedScheme scheme;
  const Graph g = directed_chain_with_back_edge();
  EXPECT_TRUE(scheme.holds(g));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
}

TEST(StUnreachableDirected, ReachableRejectedExhaustively) {
  Graph g = gen::from_edges(3, {{0, 1}, {1, 2}});
  directed::add_arc(g, 0, 1);
  directed::add_arc(g, 1, 2);
  g.set_label(0, kSourceLabel);
  g.set_label(2, kTargetLabel);
  const StUnreachableDirectedScheme scheme;
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_FALSE(exists_accepted_proof(g, scheme.verifier(), 1));
}

}  // namespace
}  // namespace lcp::schemes
