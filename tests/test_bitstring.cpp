// Unit tests for BitString / BitReader: the proof-label codec.
#include "core/bitstring.hpp"

#include <gtest/gtest.h>

#include <random>

namespace lcp {
namespace {

TEST(BitString, EmptyByDefault) {
  BitString b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0);
  EXPECT_EQ(b.to_string(), "");
}

TEST(BitString, AppendBitRoundTrip) {
  BitString b;
  b.append_bit(true);
  b.append_bit(false);
  b.append_bit(true);
  EXPECT_EQ(b.size(), 3);
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
  EXPECT_EQ(b.to_string(), "101");
}

TEST(BitString, AppendUintMsbFirst) {
  BitString b;
  b.append_uint(0b1011, 4);
  EXPECT_EQ(b.to_string(), "1011");
}

TEST(BitString, AppendUintZeroWidthIsNoop) {
  BitString b;
  b.append_uint(42, 0);
  EXPECT_TRUE(b.empty());
}

TEST(BitString, AppendUintIgnoresHighBits) {
  BitString b;
  b.append_uint(0xFF, 3);  // only the low 3 bits
  EXPECT_EQ(b.to_string(), "111");
  BitString c;
  c.append_uint(0b1000, 3);  // bit 3 is above the width
  EXPECT_EQ(c.to_string(), "000");
}

TEST(BitString, FromStringRoundTrip) {
  const BitString b = BitString::from_string("0110010");
  EXPECT_EQ(b.size(), 7);
  EXPECT_EQ(b.to_string(), "0110010");
}

TEST(BitString, EqualityIncludesLength) {
  BitString a = BitString::from_string("01");
  BitString b = BitString::from_string("010");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BitString::from_string("01"));
}

TEST(BitString, OrderingIsLexicographic) {
  EXPECT_LT(BitString::from_string("0"), BitString::from_string("1"));
  EXPECT_LT(BitString::from_string("01"), BitString::from_string("010"));
  EXPECT_LT(BitString::from_string(""), BitString::from_string("0"));
}

TEST(BitString, AppendConcatenates) {
  BitString a = BitString::from_string("101");
  a.append(BitString::from_string("01"));
  EXPECT_EQ(a.to_string(), "10101");
}

TEST(BitString, HashDistinguishesContentAndLength) {
  EXPECT_NE(BitString::from_string("0").hash(),
            BitString::from_string("00").hash());
  EXPECT_NE(BitString::from_string("01").hash(),
            BitString::from_string("10").hash());
  EXPECT_EQ(BitString::from_string("0110").hash(),
            BitString::from_string("0110").hash());
}

TEST(BitReader, ReadsBackWhatWasWritten) {
  BitString b;
  b.append_uint(13, 5);
  b.append_bit(true);
  b.append_uint(7, 3);
  BitReader r(b);
  EXPECT_EQ(r.read_uint(5), 13u);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_uint(3), 7u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitReader, OverrunLatchesFailure) {
  BitString b;
  b.append_uint(3, 2);
  BitReader r(b);
  EXPECT_EQ(r.read_uint(2), 3u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.read_uint(1), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.exhausted());
}

TEST(BitReader, RemainingCountsDown) {
  BitString b;
  b.append_uint(0, 10);
  BitReader r(b);
  EXPECT_EQ(r.remaining(), 10);
  r.read_uint(4);
  EXPECT_EQ(r.remaining(), 6);
}

TEST(BitString, RandomRoundTrip64) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t value = rng();
    const int width = 1 + static_cast<int>(rng() % 64);
    const std::uint64_t masked =
        width == 64 ? value : (value & ((1ull << width) - 1));
    BitString b;
    b.append_uint(value, width);
    BitReader r(b);
    EXPECT_EQ(r.read_uint(width), masked);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(BitWidthFor, Basics) {
  EXPECT_EQ(bit_width_for(0), 1);
  EXPECT_EQ(bit_width_for(1), 1);
  EXPECT_EQ(bit_width_for(2), 2);
  EXPECT_EQ(bit_width_for(255), 8);
  EXPECT_EQ(bit_width_for(256), 9);
}

}  // namespace
}  // namespace lcp
