// The dynamic proof-maintenance subsystem (src/dynamic/): targeted cases
// for the tree, coloring, and matching maintainers and the DynamicPipeline
// fallback machinery.  The randomized cross-check lives in
// tests/test_dynamic_fuzz.cpp.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "dynamic/coloring_maintainer.hpp"
#include "dynamic/matching_maintainer.hpp"
#include "dynamic/pipeline.hpp"
#include "dynamic/tree_maintainer.hpp"
#include "graph/generators.hpp"
#include "schemes/chromatic.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

using dynamic::DynamicPipeline;
using dynamic::GreedyColoringMaintainer;
using dynamic::MatchingMaintainer;
using dynamic::TreeCertMaintainer;

/// The pipeline's incremental verdict must be bit-identical to a fresh
/// stateless DirectEngine sweep over the maintained assignment.
void expect_matches_direct(DynamicPipeline& pipe, const RunResult& got) {
  DirectEngine direct({/*cache_views=*/false});
  const RunResult want =
      direct.run(pipe.graph(), pipe.proof(), pipe.scheme().verifier());
  EXPECT_EQ(got.all_accept, want.all_accept);
  EXPECT_EQ(got.rejecting, want.rejecting);
}

// ------------------------------------------------------------ tree certs --

DynamicPipeline leader_pipeline(Graph g) {
  static const schemes::LeaderElectionScheme scheme;
  g.set_label(0, schemes::kLeaderFlag);
  return DynamicPipeline(
      std::move(g), scheme,
      std::make_unique<TreeCertMaintainer>(schemes::kLeaderFlag));
}

TEST(TreeMaintainer, BindsToSchemeProof) {
  DynamicPipeline pipe = leader_pipeline(gen::random_connected(20, 0.2, 7));
  EXPECT_TRUE(pipe.maintainer_bound());
  EXPECT_TRUE(pipe.verify().all_accept);
}

TEST(TreeMaintainer, SplicesAroundRemovedTreeEdge) {
  // Removing any single edge of a cycle keeps it connected, so whichever
  // edge the certificate tree used, the maintainer must heal.
  DynamicPipeline pipe = leader_pipeline(gen::cycle(8));
  auto* maintainer = static_cast<TreeCertMaintainer*>(pipe.maintainer());
  for (int i = 0; i < 8; ++i) {
    MutationBatch batch;
    batch.remove_edge(i, (i + 1) % 8);
    RunResult r = pipe.apply(batch);
    EXPECT_TRUE(r.all_accept) << "removing edge " << i;
    expect_matches_direct(pipe, r);
    MutationBatch undo;
    undo.add_edge(i, (i + 1) % 8);
    r = pipe.apply(undo);
    EXPECT_TRUE(r.all_accept);
    expect_matches_direct(pipe, r);
  }
  EXPECT_EQ(pipe.stats().declined, 0u);
  EXPECT_EQ(pipe.stats().reproves, 0u);
  EXPECT_GT(maintainer->stats().splices, 0u);
}

TEST(TreeMaintainer, SplitAndMergeAcrossComponents) {
  DynamicPipeline pipe = leader_pipeline(gen::path(9));
  auto* maintainer = static_cast<TreeCertMaintainer*>(pipe.maintainer());

  // Cutting a path splits it; the leaderless component must raise alarms.
  MutationBatch cut;
  cut.remove_edge(4, 5);
  RunResult r = pipe.apply(cut);
  EXPECT_FALSE(r.all_accept);
  expect_matches_direct(pipe, r);
  EXPECT_EQ(maintainer->stats().splits, 1u);
  EXPECT_EQ(pipe.stats().reproves, 0u);  // the maintainer kept the forest

  // Reconnecting elsewhere merges the components back.
  MutationBatch join;
  join.add_edge(0, 8);
  r = pipe.apply(join);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  EXPECT_EQ(maintainer->stats().merges, 1u);
  EXPECT_EQ(pipe.stats().reproves, 0u);
}

TEST(TreeMaintainer, ReRootsOnLeaderMove) {
  DynamicPipeline pipe = leader_pipeline(gen::random_connected(16, 0.15, 3));
  auto* maintainer = static_cast<TreeCertMaintainer*>(pipe.maintainer());
  MutationBatch batch;
  batch.set_node_label(0, 0);
  batch.set_node_label(11, schemes::kLeaderFlag);
  const RunResult r = pipe.apply(batch);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  EXPECT_EQ(maintainer->stats().reroots, 1u);
  EXPECT_EQ(pipe.stats().reproves, 0u);
}

TEST(TreeMaintainer, GrowsWithAddedNodes) {
  DynamicPipeline pipe = leader_pipeline(gen::cycle(6));
  const NodeId fresh = pipe.graph().max_id() + 1;
  MutationBatch batch;
  batch.add_node(fresh);
  batch.add_edge(6, 2);
  const RunResult r = pipe.apply(batch);
  EXPECT_EQ(pipe.graph().n(), 7);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  EXPECT_EQ(pipe.stats().reproves, 0u);

  // An isolated addition leaves the leader component intact but breaks
  // connectivity: somebody must reject.
  MutationBatch lone;
  lone.add_node(fresh + 1);
  const RunResult r2 = pipe.apply(lone);
  EXPECT_FALSE(r2.all_accept);
  expect_matches_direct(pipe, r2);
}

TEST(TreeMaintainer, RemoveThenReAddInOneBatch) {
  DynamicPipeline pipe = leader_pipeline(gen::path(7));
  MutationBatch batch;
  batch.remove_edge(3, 4);
  batch.add_edge(3, 4);
  const RunResult r = pipe.apply(batch);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  EXPECT_EQ(pipe.stats().reproves, 0u);
}

TEST(TreeMaintainer, DeclinesOutOfBandProofEdit) {
  DynamicPipeline pipe = leader_pipeline(gen::cycle(6));
  MutationBatch tamper;
  tamper.set_proof_label(2, BitString::from_string("1011"));
  const RunResult r = pipe.apply(tamper);
  // The maintainer declines, the pipeline reproves, and the fresh proof
  // overwrites the tamper: verification still accepts.
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  EXPECT_EQ(pipe.stats().declined, 1u);
  EXPECT_EQ(pipe.stats().reproves, 1u);
  EXPECT_TRUE(pipe.maintainer_bound());  // rebound to the fresh proof

  // Subsequent batches are maintained again.
  MutationBatch batch;
  batch.remove_edge(0, 1);
  const RunResult r2 = pipe.apply(batch);
  EXPECT_TRUE(r2.all_accept);
  EXPECT_EQ(pipe.stats().reproves, 1u);
}

// -------------------------------------------------------------- coloring --

TEST(ColoringMaintainer, RecolorsConflictEndpoint) {
  const schemes::ChromaticLeqKScheme scheme(3);
  DynamicPipeline pipe(gen::cycle(6), scheme,
                       std::make_unique<GreedyColoringMaintainer>(3));
  ASSERT_TRUE(pipe.maintainer_bound());
  MutationBatch batch;
  batch.add_edge(0, 2);  // an even cycle 2-colours, so 0 and 2 collide
  const RunResult r = pipe.apply(batch);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  EXPECT_EQ(pipe.stats().reproves, 0u);
  auto* maintainer = static_cast<GreedyColoringMaintainer*>(pipe.maintainer());
  EXPECT_EQ(maintainer->stats().recolored, 1u);
}

TEST(ColoringMaintainer, DeclineFallsBackToExactProver) {
  const schemes::ChromaticLeqKScheme scheme(2);
  DynamicPipeline pipe(gen::path(4), scheme,
                       std::make_unique<GreedyColoringMaintainer>(2));
  ASSERT_TRUE(pipe.maintainer_bound());

  MutationBatch batch;
  batch.add_edge(0, 2);  // triangle: not 2-colourable, greedy cannot help
  const RunResult r = pipe.apply(batch);
  EXPECT_FALSE(r.all_accept);  // no-instance: rejection is the right answer
  expect_matches_direct(pipe, r);
  EXPECT_EQ(pipe.stats().declined, 1u);
  EXPECT_EQ(pipe.stats().failed_proves, 1u);
  EXPECT_FALSE(pipe.maintainer_bound());

  // Removing the chord restores 2-colourability; the reprove path heals
  // the assignment and rebinds the maintainer.
  MutationBatch undo;
  undo.remove_edge(0, 2);
  const RunResult r2 = pipe.apply(undo);
  EXPECT_TRUE(r2.all_accept);
  expect_matches_direct(pipe, r2);
  EXPECT_TRUE(pipe.maintainer_bound());
}

// -------------------------------------------------------------- matching --

Graph matched_path6() {
  Graph g = gen::path(6);
  for (int u : {0, 2, 4}) {
    g.set_edge_label(g.edge_index(u, u + 1),
                     schemes::MaximalMatchingScheme::kMatchedBit);
  }
  return g;
}

TEST(MatchingMaintainer, RepairsRemovalAndInsertion) {
  const schemes::MaximalMatchingScheme scheme;
  DynamicPipeline pipe(matched_path6(), scheme,
                       std::make_unique<MatchingMaintainer>(
                           schemes::MaximalMatchingScheme::kMatchedBit));
  ASSERT_TRUE(pipe.maintainer_bound());

  // Dropping the middle matched edge leaves 2 and 3 free but non-adjacent:
  // still maximal, nothing to rematch.
  MutationBatch batch;
  batch.remove_edge(2, 3);
  RunResult r = pipe.apply(batch);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);

  // Re-inserting it joins two free nodes: the maintainer must match them
  // on the spot or node 2 would reject.
  MutationBatch undo;
  undo.add_edge(2, 3);
  r = pipe.apply(undo);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  auto* maintainer = static_cast<MatchingMaintainer*>(pipe.maintainer());
  EXPECT_EQ(maintainer->stats().direct_matches, 1u);
  EXPECT_EQ(pipe.stats().reproves, 0u);
}

TEST(MatchingMaintainer, HealsOutOfBandBitEdit) {
  const schemes::MaximalMatchingScheme scheme;
  DynamicPipeline pipe(matched_path6(), scheme,
                       std::make_unique<MatchingMaintainer>(
                           schemes::MaximalMatchingScheme::kMatchedBit));
  ASSERT_TRUE(pipe.maintainer_bound());
  MutationBatch tamper;
  tamper.set_edge_label(0, 1, 0);  // clear the matched bit behind our back
  const RunResult r = pipe.apply(tamper);
  EXPECT_TRUE(r.all_accept);
  expect_matches_direct(pipe, r);
  auto* maintainer = static_cast<MatchingMaintainer*>(pipe.maintainer());
  EXPECT_EQ(maintainer->stats().healed_labels, 1u);
  EXPECT_EQ(pipe.stats().reproves, 0u);
  // The healed label is back on the graph.
  EXPECT_EQ(pipe.graph().edge_label(pipe.graph().edge_index(0, 1)),
            schemes::MaximalMatchingScheme::kMatchedBit);
}

// -------------------------------------------------- pipeline without one --

TEST(DynamicPipeline, NullMaintainerReprovesEveryBatch) {
  static const schemes::LeaderElectionScheme scheme;
  Graph g = gen::cycle(8);
  g.set_label(0, schemes::kLeaderFlag);
  DynamicPipeline pipe(std::move(g), scheme, nullptr);
  EXPECT_FALSE(pipe.maintainer_bound());
  for (int i = 0; i < 3; ++i) {
    MutationBatch batch;
    batch.remove_edge(i, i + 1);
    batch.add_edge(i, i + 1);
    const RunResult r = pipe.apply(batch);
    EXPECT_TRUE(r.all_accept);
    expect_matches_direct(pipe, r);
  }
  EXPECT_EQ(pipe.stats().reproves, 3u);
  EXPECT_EQ(pipe.stats().repaired, 0u);
}

}  // namespace
}  // namespace lcp
