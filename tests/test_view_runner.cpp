// The LOCAL model core: view extraction semantics, runner acceptance, and
// the equivalence of the two execution backends (direct induced balls vs
// explicit message-passing rounds) — the paper's Section 2.1 semantics.
#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/runner.hpp"
#include "core/verifier.hpp"
#include "core/view.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "local/message_passing.hpp"

namespace lcp {
namespace {

TEST(View, BallIsInducedSubgraph) {
  // C8 with a chord inside the ball: the chord must be present (induced).
  Graph g = gen::cycle(8);
  g.add_edge(1, 3);
  const View v = extract_view(g, Proof::empty(g.n()), 2, 1);
  // Ball of node 2 radius 1: nodes {2, 1, 3}; induced includes chord 1-3.
  EXPECT_EQ(v.ball.n(), 3);
  const int i1 = *v.ball.index_of(g.id(1));
  const int i3 = *v.ball.index_of(g.id(3));
  EXPECT_TRUE(v.ball.has_edge(i1, i3));
}

TEST(View, DistancesFromCenter) {
  const Graph g = gen::path(9);
  const View v = extract_view(g, Proof::empty(g.n()), 4, 3);
  EXPECT_EQ(v.ball.n(), 7);
  EXPECT_EQ(v.dist_of(v.center), 0);
  int at_three = 0;
  for (int u = 0; u < v.ball.n(); ++u) {
    if (v.dist_of(u) == 3) ++at_three;
  }
  EXPECT_EQ(at_three, 2);
}

TEST(View, ProofsTravelWithNodes) {
  const Graph g = gen::cycle(5);
  Proof p = Proof::empty(5);
  for (int i = 0; i < 5; ++i) p.labels[static_cast<std::size_t>(i)].append_uint(
      static_cast<std::uint64_t>(i), 3);
  const View v = extract_view(g, p, 0, 1);
  for (int u = 0; u < v.ball.n(); ++u) {
    BitReader r(v.proof_of(u));
    EXPECT_EQ(r.read_uint(3), v.ball.id(u) - 1);  // ids are 1..n
  }
}

TEST(View, BallNodesReportsDistances) {
  // The 4-arg ball_nodes overload returns the BFS distances it already
  // computed; they must equal a from-scratch BFS restricted to the ball.
  Graph g = gen::grid(3, 4);
  g.add_edge(0, 11);
  for (int center : {0, 5, 11}) {
    for (int radius : {0, 1, 2, 3}) {
      std::vector<int> dist;
      const std::vector<int> order = ball_nodes(g, center, radius, dist);
      ASSERT_EQ(order.size(), dist.size());
      EXPECT_EQ(order, ball_nodes(g, center, radius));
      const std::vector<int> full = bfs_distances(g, center);
      for (std::size_t i = 0; i < order.size(); ++i) {
        EXPECT_EQ(dist[i], full[static_cast<std::size_t>(order[i])]);
        EXPECT_LE(dist[i], radius);
      }
    }
  }
}

TEST(View, SeesWholeComponent) {
  const Graph g = gen::cycle(6);
  EXPECT_FALSE(extract_view(g, Proof::empty(6), 0, 2).sees_whole_component());
  EXPECT_TRUE(extract_view(g, Proof::empty(6), 0, 4).sees_whole_component());
}

TEST(Runner, AllAcceptAndRejectingList) {
  const Graph g = gen::path(5);
  const LambdaVerifier odd_id(0, [](const View& v) {
    return v.ball.id(v.center) % 2 == 1;
  });
  const RunResult r = default_engine().run(g, Proof::empty(5), odd_id);
  EXPECT_FALSE(r.all_accept);
  EXPECT_EQ(r.rejecting.size(), 2u);  // ids 2 and 4
}

TEST(Runner, RadiusZeroSeesOnlySelf) {
  const Graph g = gen::complete(4);
  const LambdaVerifier lonely(0, [](const View& v) {
    return v.ball.n() == 1;
  });
  EXPECT_TRUE(default_engine().run(g, Proof::empty(4), lonely).all_accept);
}

class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, FloodingAssemblesTheInducedBall) {
  const int radius = GetParam();
  // A verifier that fingerprints its whole view; if the two backends build
  // different views for any node, some fingerprint check fails.
  std::vector<Graph> graphs;
  graphs.push_back(gen::cycle(9));
  graphs.push_back(gen::grid(3, 4));
  graphs.push_back(gen::petersen());
  graphs.push_back(gen::random_connected(12, 0.2, 5));
  graphs.push_back(gen::random_tree(10, 2));
  graphs.push_back(gen::disjoint_union(gen::cycle(4), gen::path(3)));
  for (Graph& g : graphs) {
    Proof p = Proof::empty(g.n());
    for (int v = 0; v < g.n(); ++v) {
      p.labels[static_cast<std::size_t>(v)].append_uint(g.id(v) * 7 + 1, 8);
    }
    for (int v = 0; v < g.n(); ++v) {
      const View direct = extract_view(g, p, v, radius);
      const View flooded = assemble_view_by_flooding(g, p, v, radius);
      // Same node sets (as ids), same edge counts, same centre, same
      // proofs per id, same distances per id.
      ASSERT_EQ(direct.ball.n(), flooded.ball.n());
      ASSERT_EQ(direct.ball.m(), flooded.ball.m());
      EXPECT_EQ(direct.center_id(), flooded.center_id());
      for (int u = 0; u < direct.ball.n(); ++u) {
        const NodeId id = direct.ball.id(u);
        const auto fu = flooded.ball.index_of(id);
        ASSERT_TRUE(fu.has_value());
        EXPECT_EQ(direct.proof_of(u), flooded.proof_of(*fu));
        EXPECT_EQ(direct.dist_of(u), flooded.dist_of(*fu));
        EXPECT_EQ(direct.ball.label(u), flooded.ball.label(*fu));
        EXPECT_EQ(direct.ball.degree(u), flooded.ball.degree(*fu));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, BackendEquivalence, ::testing::Values(0, 1, 2, 3));

TEST(Checker, ExhaustiveSearchFindsTwoColoring) {
  // Verifier: accept iff proof is a proper 1-bit 2-colouring.
  const LambdaVerifier two_col(1, [](const View& v) {
    const BitString& mine = v.proof_of(v.center);
    if (mine.size() != 1) return false;
    for (const HalfEdge& h : v.ball.neighbors(v.center)) {
      const BitString& other = v.proof_of(h.to);
      if (other.size() != 1 || other.bit(0) == mine.bit(0)) return false;
    }
    return true;
  });
  EXPECT_TRUE(exists_accepted_proof(gen::cycle(4), two_col, 1));
  EXPECT_FALSE(exists_accepted_proof(gen::cycle(5), two_col, 1));
}

TEST(Checker, TamperedVariantsAreDistinctFromOriginal) {
  Proof p = Proof::empty(4);
  for (int v = 0; v < 4; ++v) {
    p.labels[static_cast<std::size_t>(v)].append_uint(
        static_cast<std::uint64_t>(v), 4);
  }
  const auto variants = tampered_variants(p, 50, 1);
  EXPECT_GT(variants.size(), 10u);
  for (const Proof& q : variants) {
    bool same = true;
    for (int v = 0; v < 4; ++v) {
      if (!(q.labels[static_cast<std::size_t>(v)] ==
            p.labels[static_cast<std::size_t>(v)])) {
        same = false;
      }
    }
    EXPECT_FALSE(same);
  }
}

}  // namespace
}  // namespace lcp

// ---- appended: end-to-end scheme equivalence across backends ----

#include "schemes/cycle_certified.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

TEST(BackendEquivalence, SchemesEndToEnd) {
  // Full schemes (not just raw views): the message-passing backend must
  // reproduce the ball-extraction verdicts node for node, on accepted
  // proofs and on tampered ones.
  schemes::LeaderElectionScheme leader;
  Graph g1 = gen::random_connected(12, 0.25, 21);
  g1.set_label(4, schemes::kLeaderFlag);
  const Proof p1 = *leader.prove(g1);
  EXPECT_TRUE(run_verifier_message_passing(g1, p1, leader.verifier())
                  .all_accept);

  Proof bad = p1;
  bad.labels[2] = BitString::from_string("1010");
  const RunResult direct = default_engine().run(g1, bad, leader.verifier());
  const RunResult flooded =
      run_verifier_message_passing(g1, bad, leader.verifier());
  EXPECT_EQ(direct.all_accept, flooded.all_accept);
  EXPECT_EQ(direct.rejecting, flooded.rejecting);

  schemes::NonBipartiteScheme nonbip;
  const Graph g2 = gen::petersen();
  const Proof p2 = *nonbip.prove(g2);
  EXPECT_TRUE(run_verifier_message_passing(g2, p2, nonbip.verifier())
                  .all_accept);
  const RunResult d2 = default_engine().run(gen::cycle(6), Proof::empty(6),
                                    nonbip.verifier());
  const RunResult f2 = run_verifier_message_passing(
      gen::cycle(6), Proof::empty(6), nonbip.verifier());
  EXPECT_EQ(d2.rejecting, f2.rejecting);
}

}  // namespace
}  // namespace lcp
