// The universal O(n^2) scheme and its Section 6 instantiations: symmetric
// graphs (Theta(n^2)) and non-3-colourability (Omega(n^2/log n)), plus the
// Theta(n) fixpoint-free tree scheme.
#include <gtest/gtest.h>

#include "algo/trees.hpp"
#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "schemes/fixpoint_tree.hpp"
#include "schemes/universal.hpp"

namespace lcp::schemes {
namespace {

TEST(Universal, AnyPredicateOnConnectedGraphs) {
  // "Number of edges is even" — an arbitrary computable property.
  const UniversalScheme scheme(
      "even-m", [](const Graph& g) { return g.m() % 2 == 0; });
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::cycle(6)));
  EXPECT_FALSE(scheme.holds(gen::cycle(7)));
  EXPECT_FALSE(scheme.prove(gen::cycle(7)).has_value());
}

TEST(Universal, ProofDescribesTheGraphExactly) {
  const UniversalScheme scheme("anything", [](const Graph&) { return true; });
  const Graph g = gen::petersen();
  const auto proof = scheme.prove(g);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(default_engine().run(g, *proof, scheme.verifier()).all_accept);
  // Any single structural bit flip is caught by some node.
  int checked = 0;
  for (const Proof& bad : tampered_variants(*proof, 40, 2)) {
    EXPECT_TRUE(rejected(g, bad, scheme.verifier()));
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(Universal, ForeignGraphEncodingRejected) {
  const UniversalScheme scheme("anything", [](const Graph&) { return true; });
  // Encode C6, feed it to the 6-path with the same ids.
  const auto proof = scheme.prove(gen::cycle(6));
  const Graph path = gen::path(6);
  EXPECT_TRUE(rejected(path, *proof, scheme.verifier()));
}

TEST(Universal, QuadraticSizeGrowth) {
  const UniversalScheme scheme("anything", [](const Graph&) { return true; });
  const int s8 = scheme.prove(gen::cycle(8))->size_bits();
  const int s16 = scheme.prove(gen::cycle(16))->size_bits();
  const int s32 = scheme.prove(gen::cycle(32))->size_bits();
  // n^2 dominates: quadrupling ratios.
  EXPECT_GT(s32 - s16, 2 * (s16 - s8));
}

TEST(SymmetricGraphs, AcceptedAndRejectedByAutomorphismStatus) {
  const auto scheme = make_symmetric_graph_scheme();
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::cycle(7)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::star(5)));
  // The asymmetric spider (legs 1, 2, 3).
  Graph spider;
  for (int i = 1; i <= 7; ++i) spider.add_node(static_cast<NodeId>(i));
  spider.add_edge(0, 1);
  spider.add_edge(0, 2);
  spider.add_edge(2, 3);
  spider.add_edge(0, 4);
  spider.add_edge(4, 5);
  spider.add_edge(5, 6);
  EXPECT_FALSE(scheme->holds(spider));
  // Proofs of symmetric graphs do not transfer.
  const auto p = scheme->prove(gen::cycle(7));
  EXPECT_TRUE(rejected(spider, *p, scheme->verifier()));
}

TEST(NonThreeColorable, K4AndK5Certified) {
  const auto scheme = make_non_3_colorable_scheme();
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::complete(4)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::complete(5)));
  EXPECT_FALSE(scheme->holds(gen::petersen()));  // 3-chromatic
  EXPECT_FALSE(scheme->holds(gen::cycle(7)));
}

TEST(BoundedUniversal, TruncationKeepsCompleteness) {
  for (int b : {16, 64, 256}) {
    const UniversalScheme scheme("anything",
                                 [](const Graph&) { return true; }, b);
    const Graph g = gen::cycle(8);
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << b;
    EXPECT_LE(scheme.prove(g)->size_bits(), b);
  }
}

TEST(BoundedUniversal, LargeBudgetFallsBackToSoundChecks) {
  // When the budget exceeds the full label, the truncated scheme behaves
  // exactly like the sound one.
  const UniversalScheme scheme(
      "even-m", [](const Graph& g) { return g.m() % 2 == 0; }, 100000);
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::cycle(6)));
  const auto p = scheme.prove(gen::cycle(6));
  EXPECT_TRUE(rejected(gen::path(6), *p, scheme.verifier()));
}

TEST(FixpointFreeTree, BicentralMirroredTreesAccepted) {
  const FixpointFreeTreeScheme scheme;
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::path(2)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::path(6)));
  // Two mirrored stars joined by an edge.
  Graph g;
  for (int i = 1; i <= 8; ++i) g.add_node(static_cast<NodeId>(i));
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);  // hub 0, leaves 1..3
  g.add_edge(4, 5);
  g.add_edge(4, 6);
  g.add_edge(4, 7);  // hub 4
  g.add_edge(0, 4);
  EXPECT_TRUE(scheme.holds(g));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
}

TEST(FixpointFreeTree, UnicentralTreesRejected) {
  const FixpointFreeTreeScheme scheme;
  EXPECT_FALSE(scheme.holds(gen::path(5)));
  EXPECT_FALSE(scheme.holds(gen::star(6)));
  const auto honest = scheme.prove(gen::path(6));
  ASSERT_TRUE(honest.has_value());
  // Transplanting the P6 proof onto P5/P7-shaped inputs must fail.
  Proof shrunk = Proof::empty(5);
  for (int v = 0; v < 5; ++v) {
    shrunk.labels[static_cast<std::size_t>(v)] =
        honest->labels[static_cast<std::size_t>(v)];
  }
  EXPECT_TRUE(rejected(gen::path(5), shrunk, scheme.verifier()));
}

TEST(FixpointFreeTree, ProofSizeIsLinearNotQuadratic) {
  const FixpointFreeTreeScheme scheme;
  const int s8 = scheme.prove(gen::path(8))->size_bits();
  const int s32 = scheme.prove(gen::path(32))->size_bits();
  EXPECT_LT(s32, 5 * s8);      // linear-ish
  EXPECT_GT(s32, 2 * (s8 - 20));
}

TEST(FixpointFreeTree, ExhaustiveAgreementWithBruteForceOnTinyTrees) {
  const FixpointFreeTreeScheme scheme;
  for (int n = 2; n <= 7; ++n) {
    for (const Graph& t : all_free_trees(n)) {
      EXPECT_EQ(scheme.holds(t), tree_fixpoint_free_symmetry(t));
      if (scheme.holds(t)) {
        EXPECT_TRUE(scheme_accepts_own_proof(scheme, t));
      }
    }
  }
}

}  // namespace
}  // namespace lcp::schemes
