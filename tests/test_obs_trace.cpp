// TraceRecorder span semantics (nesting, threads, Chrome export) and the
// end-to-end guarantees the session facade makes: one apply() yields the
// documented phase tree, and disabling telemetry changes no verdict and
// no proof bit.
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.hpp"
#include "graph/generators.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

using obs::TraceRecorder;

const TraceRecorder::Event* find_event(
    const std::vector<TraceRecorder::Event>& events, const std::string& name) {
  for (const TraceRecorder::Event& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Span mechanics.
// ---------------------------------------------------------------------------

TEST(TraceRecorder, NestedSpansLinkToTheirParent) {
  TraceRecorder recorder;
  {
    auto outer = recorder.span("outer");
    {
      auto mid = recorder.span("mid");
      auto inner = recorder.span("inner");
    }
    auto sibling = recorder.span("sibling");
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  const auto* outer = find_event(events, "outer");
  const auto* mid = find_event(events, "mid");
  const auto* inner = find_event(events, "inner");
  const auto* sibling = find_event(events, "sibling");
  ASSERT_TRUE(outer && mid && inner && sibling);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(mid->parent, outer->id);
  EXPECT_EQ(inner->parent, mid->id);
  EXPECT_EQ(sibling->parent, outer->id);  // not a child of the closed mid
}

TEST(TraceRecorder, EarlyCloseDetachesTheSpan) {
  TraceRecorder recorder;
  auto phase_a = recorder.span("phase_a");
  phase_a.close();
  auto phase_b = recorder.span("phase_b");  // sibling, not child
  phase_b.close();
  phase_a.close();  // idempotent
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(find_event(events, "phase_b")->parent, 0u);
}

TEST(TraceRecorder, MovedSpanStillClosesOnce) {
  TraceRecorder recorder;
  {
    auto a = recorder.span("moved");
    auto b = std::move(a);
    EXPECT_FALSE(a.active());
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(recorder.event_count(), 1u);
}

TEST(TraceRecorder, DefaultSpanIsInert) {
  TraceRecorder::Span inert;
  EXPECT_FALSE(inert.active());
  inert.close();  // no-op, no crash
}

TEST(TraceRecorder, ThreadsGetDistinctTidsAndIndependentNesting) {
  TraceRecorder recorder;
  auto worker = [&recorder] {
    auto lane = recorder.span("lane");
    auto item = recorder.span("item");
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  std::map<int, std::vector<const TraceRecorder::Event*>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(&e);
  ASSERT_EQ(by_tid.size(), 2u);
  for (const auto& [tid, lane_events] : by_tid) {
    ASSERT_EQ(lane_events.size(), 2u);
    const auto* lane = lane_events[0]->name == "lane" ? lane_events[0]
                                                      : lane_events[1];
    const auto* item = lane_events[0]->name == "item" ? lane_events[0]
                                                      : lane_events[1];
    EXPECT_EQ(lane->parent, 0u);
    EXPECT_EQ(item->parent, lane->id);  // never a cross-thread parent
  }
}

TEST(TraceRecorder, ChromeJsonIsWellFormed) {
  TraceRecorder recorder;
  {
    auto outer = recorder.span("outer");
    auto inner = recorder.span("inner");
  }
  const std::string json = recorder.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"id\": "), std::string::npos);
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// The session's phase tree: apply() under a maintainer produces
// session.apply -> {mutate, repair, verify} with engine phases below.
// ---------------------------------------------------------------------------

MutationBatch leader_move(int from, int to) {
  MutationBatch batch;
  batch.set_node_label(from, 0);
  batch.set_node_label(to, schemes::kLeaderFlag);
  return batch;
}

TEST(SessionTrace, ApplyEmitsTheDocumentedPhaseTree) {
  Graph g = gen::random_connected(200, 2.0 / 200, 99);
  g.set_label(0, schemes::kLeaderFlag);
  auto session = VerificationSession::on(std::move(g))
                     .scheme("leader-election")
                     .engine(EngineKind::kIncremental)
                     .maintain(true)
                     .telemetry(true)
                     .build();
  ASSERT_NE(session.telemetry_sink(), nullptr);
  session.telemetry_sink()->trace.clear();  // drop build/bind noise

  EXPECT_TRUE(session.apply(leader_move(0, 17)).all_accept);

  const auto events = session.telemetry_sink()->trace.events();
  const auto* apply = find_event(events, "session.apply");
  const auto* mutate = find_event(events, "session.mutate");
  const auto* verify = find_event(events, "session.verify");
  ASSERT_NE(apply, nullptr);
  ASSERT_NE(mutate, nullptr);
  ASSERT_NE(verify, nullptr);
  EXPECT_EQ(apply->parent, 0u);
  EXPECT_EQ(mutate->parent, apply->id);
  EXPECT_EQ(verify->parent, apply->id);
  // The certificate is either repaired or reproved; both phases hang off
  // the same apply span.
  const auto* repair = find_event(events, "session.repair");
  const auto* reprove = find_event(events, "session.reprove");
  ASSERT_TRUE(repair != nullptr || reprove != nullptr);
  if (repair != nullptr) {
    EXPECT_EQ(repair->parent, apply->id);
  }
  if (reprove != nullptr) {
    EXPECT_EQ(reprove->parent, apply->id);
  }
  // The incremental engine's phases nest under the verify span.
  bool engine_child_of_verify = false;
  for (const auto& e : events) {
    if (e.name.rfind("incremental.", 0) == 0 && e.parent == verify->id) {
      engine_child_of_verify = true;
    }
  }
  EXPECT_TRUE(engine_child_of_verify);

  // The histogram digest agrees with the trace about what ran.
  const SessionTelemetry digest = session.telemetry();
  EXPECT_TRUE(digest.enabled);
  EXPECT_EQ(digest.applies, 1u);
  EXPECT_GE(digest.apply_p99_us, digest.apply_p50_us);
}

// ---------------------------------------------------------------------------
// Telemetry must be pure observation: identical verdicts, identical
// proof bits, with and without the instrumentation.
// ---------------------------------------------------------------------------

TEST(SessionTrace, DisabledTelemetryIsBitIdentical) {
  const auto build = [](bool telemetry) {
    Graph g = gen::random_connected(300, 2.0 / 300, 1234);
    g.set_label(0, schemes::kLeaderFlag);
    return VerificationSession::on(std::move(g))
        .scheme("leader-election")
        .engine(EngineKind::kIncremental)
        .maintain(true)
        .telemetry(telemetry)
        .build();
  };
  auto with = build(true);
  auto without = build(false);
  EXPECT_EQ(without.telemetry_sink(), nullptr);
  EXPECT_FALSE(without.telemetry().enabled);

  int leader = 0;
  for (int it = 0; it < 12; ++it) {
    const int next = (leader + 37 + it * 13) % 300;
    const MutationBatch batch = leader_move(leader, next);
    leader = next;
    const RunResult a = with.apply(batch);
    const RunResult b = without.apply(batch);
    EXPECT_EQ(a.all_accept, b.all_accept) << "iteration " << it;
    EXPECT_EQ(a.rejecting, b.rejecting) << "iteration " << it;
  }
  ASSERT_EQ(with.proof().labels.size(), without.proof().labels.size());
  for (std::size_t v = 0; v < with.proof().labels.size(); ++v) {
    EXPECT_TRUE(with.proof().labels[v] == without.proof().labels[v])
        << "proof label diverged at node " << v;
  }
  EXPECT_EQ(with.stats().batches, without.stats().batches);
  EXPECT_EQ(with.stats().repaired, without.stats().repaired);
  EXPECT_EQ(with.stats().reproves, without.stats().reproves);
}

}  // namespace
}  // namespace lcp
