// Dinic max-flow and the Menger vertex-connectivity witness (Section 4.2's
// prover): disjoint paths, separator, S/C/T partition.
#include <gtest/gtest.h>

#include <set>

#include "algo/maxflow.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

TEST(FlowNetwork, SimpleUnitPath) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 1);
  net.add_arc(1, 2, 1);
  EXPECT_EQ(net.max_flow(0, 2), 1);
}

TEST(FlowNetwork, ParallelRoutes) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 1);
  net.add_arc(0, 2, 1);
  net.add_arc(1, 3, 1);
  net.add_arc(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
}

TEST(FlowNetwork, BottleneckCapacities) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 5);
  net.add_arc(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

void check_witness(const Graph& g, int s, int t, int expect_k) {
  const MengerWitness w = st_vertex_connectivity(g, s, t);
  EXPECT_EQ(w.connectivity, expect_k);
  ASSERT_EQ(static_cast<int>(w.paths.size()), expect_k);
  EXPECT_EQ(static_cast<int>(w.separator.size()), expect_k);

  // Paths run s -> t along edges; interiors are pairwise disjoint.
  std::set<int> interior;
  for (const auto& path : w.paths) {
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(interior.insert(path[i]).second)
          << "node " << path[i] << " reused";
    }
  }
  // Partition: s in S, t in T, no S-T edge, separator = side C.
  EXPECT_EQ(w.side[static_cast<std::size_t>(s)], 0);
  EXPECT_EQ(w.side[static_cast<std::size_t>(t)], 2);
  for (int e = 0; e < g.m(); ++e) {
    const int su = w.side[static_cast<std::size_t>(g.edge_u(e))];
    const int sv = w.side[static_cast<std::size_t>(g.edge_v(e))];
    EXPECT_FALSE((su == 0 && sv == 2) || (su == 2 && sv == 0));
  }
  for (int c : w.separator) EXPECT_EQ(w.side[static_cast<std::size_t>(c)], 1);
  // Each path crosses C exactly once.
  for (const auto& path : w.paths) {
    int crossings = 0;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (w.side[static_cast<std::size_t>(path[i])] == 1) ++crossings;
    }
    EXPECT_EQ(crossings, 1);
  }
  // Paths are locally minimal: no chords within a path.
  for (const auto& path : w.paths) {
    for (std::size_t i = 0; i < path.size(); ++i) {
      for (std::size_t j = i + 2; j < path.size(); ++j) {
        EXPECT_FALSE(g.has_edge(path[i], path[j]))
            << "chord " << path[i] << "-" << path[j];
      }
    }
  }
}

TEST(Menger, CycleHasConnectivityTwo) {
  const Graph g = gen::cycle(8);
  check_witness(g, 0, 4, 2);
}

TEST(Menger, PathHasConnectivityOne) {
  const Graph g = gen::path(6);
  check_witness(g, 0, 5, 1);
}

TEST(Menger, GridConnectivity) {
  const Graph g = gen::grid(4, 4);
  check_witness(g, 0, 15, 2);  // opposite corners of a grid: degree 2 bound
}

TEST(Menger, CompleteBipartiteConnectivity) {
  // K_{3,3}: connectivity between two same-side nodes is 3.
  const Graph g = gen::complete_bipartite(3, 3);
  check_witness(g, 0, 1, 3);
}

TEST(Menger, DisconnectedPairIsZero) {
  const Graph g = gen::disjoint_union(gen::cycle(4), gen::cycle(4));
  check_witness(g, 0, 5, 0);
}

TEST(Menger, HypercubeConnectivityEqualsDegree) {
  const Graph g = gen::hypercube(3);
  check_witness(g, 0, 7, 3);  // antipodal nodes, kappa = 3
}

TEST(Menger, AdjacentPairThrows) {
  const Graph g = gen::cycle(5);
  EXPECT_THROW(st_vertex_connectivity(g, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace lcp
