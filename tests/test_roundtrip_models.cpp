// Section 7.1, both directions: M2ToM1Scheme takes an id-blind (port
// model) scheme back into the identifier model, and composing both
// translations round-trips LogLCP through the port-numbering model:
//
//     ParityScheme (M1)  --M1ToM2-->  port model  --M2ToM1-->  M1 again.
#include <gtest/gtest.h>

#include <memory>

#include "core/certificates.hpp"
#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "local/port_model.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

std::shared_ptr<const Scheme> round_trip_parity() {
  // odd-n in M1, pushed into the port model, pulled back into M1.
  return std::make_shared<M2ToM1Scheme>(std::make_shared<M1ToM2Scheme>(
      std::make_shared<schemes::ParityScheme>(true)));
}

TEST(RoundTrip, CompletenessOnUnlabelledGraphs) {
  const auto scheme = round_trip_parity();
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::cycle(9)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::random_tree(11, 2)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme,
                                       gen::random_connected(13, 0.3, 4)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::star(7)));
}

TEST(RoundTrip, EvenInstancesAreNoInstances) {
  const auto scheme = round_trip_parity();
  EXPECT_FALSE(scheme->holds(gen::cycle(8)));
  EXPECT_FALSE(scheme->prove(gen::cycle(8)).has_value());
  // Odd proof transplanted onto an even cycle: rejected.
  const auto honest = scheme->prove(gen::cycle(9));
  ASSERT_TRUE(honest.has_value());
  Proof cut = Proof::empty(8);
  for (int v = 0; v < 8; ++v) {
    cut.labels[static_cast<std::size_t>(v)] =
        honest->labels[static_cast<std::size_t>(v)];
  }
  EXPECT_TRUE(rejected(gen::cycle(8), cut, scheme->verifier()));
}

TEST(RoundTrip, OverheadStaysLogarithmic) {
  const auto scheme = round_trip_parity();
  const auto small = scheme->prove(gen::cycle(9));
  const auto large = scheme->prove(gen::cycle(129));
  ASSERT_TRUE(small.has_value());
  ASSERT_TRUE(large.has_value());
  // Two translations stack two O(log n) layers; still O(log n) overall.
  EXPECT_LT(large->size_bits(), 2 * small->size_bits());
}

TEST(M2ToM1, AppointedLeaderIsUnique) {
  const auto scheme = round_trip_parity();
  const Graph g = gen::cycle(9);
  const auto proof = scheme->prove(g);
  ASSERT_TRUE(proof.has_value());
  // Exactly one node carries the leader bit (right after the tree cert).
  int leaders = 0;
  for (int v = 0; v < g.n(); ++v) {
    BitReader r(proof->labels[static_cast<std::size_t>(v)]);
    ASSERT_TRUE(read_tree_cert(r).has_value());
    if (r.read_bit()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(M2ToM1, TwoAppointedLeadersRejected) {
  const auto scheme = round_trip_parity();
  const Graph g = gen::cycle(9);
  auto proof = *scheme->prove(g);
  // Forge: set a second leader bit (re-assembling the label).
  for (int v = 0; v < g.n(); ++v) {
    BitReader r(proof.labels[static_cast<std::size_t>(v)]);
    const auto cert = read_tree_cert(r);
    const bool leader = r.read_bit();
    if (leader) continue;
    BitString forged;
    append_tree_cert(forged, *cert);
    forged.append_bit(true);  // a second leader
    forged.append(r.rest());
    proof.labels[static_cast<std::size_t>(v)] = std::move(forged);
    break;
  }
  EXPECT_TRUE(rejected(g, proof, scheme->verifier()));
}

}  // namespace
}  // namespace lcp
