// Spanning-tree certificates: the LogLCP workhorse (Section 5.1).
// Completeness, serialisation, tamper-rejection, truncated completeness.
#include <gtest/gtest.h>

#include "algo/traversal.hpp"
#include "core/certificates.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

/// A scheme-less harness: verify the bare certificate at every node.
bool cert_accepted(const Graph& g, const std::vector<TreeCert>& labels,
                   int trunc_bits) {
  Proof proof = Proof::empty(g.n());
  for (int v = 0; v < g.n(); ++v) {
    append_tree_cert(proof.labels[static_cast<std::size_t>(v)],
                     labels[static_cast<std::size_t>(v)]);
  }
  const LambdaVerifier verifier(2, [trunc_bits](const View& v) {
    std::vector<std::optional<TreeCert>> certs;
    for (const BitString& b : v.proofs) {
      BitReader r(b);
      certs.push_back(read_tree_cert(r));
    }
    return check_tree_cert_at_center(v, certs, trunc_bits);
  });
  return default_engine().run(g, proof, verifier).all_accept;
}

TEST(TreeCert, SerializationRoundTrip) {
  TreeCert cert;
  cert.width = 9;
  cert.root_id = 300;
  cert.dist = 17;
  cert.subtree = 42;
  cert.total = 100;
  cert.parent_port = 3;
  BitString bits;
  append_tree_cert(bits, cert);
  BitReader r(bits);
  const auto back = read_tree_cert(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->width, 9);
  EXPECT_EQ(back->root_id, 300u);
  EXPECT_EQ(back->dist, 17u);
  EXPECT_EQ(back->subtree, 42u);
  EXPECT_EQ(back->total, 100u);
  EXPECT_EQ(back->parent_port, 3);
  EXPECT_TRUE(r.exhausted());
}

TEST(TreeCert, TruncatedLabelRejected) {
  BitString bits;
  bits.append_uint(5, 6);
  BitReader r(bits);
  EXPECT_FALSE(read_tree_cert(r).has_value());
}

class CertCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(CertCompleteness, HonestCertificatesAcceptedOnManyGraphs) {
  const int root = 0;
  std::vector<Graph> graphs;
  graphs.push_back(gen::cycle(3 + GetParam()));
  graphs.push_back(gen::random_tree(6 + GetParam(), GetParam()));
  graphs.push_back(gen::random_connected(8 + GetParam(), 0.3,
                                         static_cast<std::uint32_t>(GetParam())));
  graphs.push_back(gen::grid(2 + GetParam() % 3, 3));
  for (const Graph& g : graphs) {
    const auto labels = make_tree_cert_labels(g, bfs_tree(g, root), 0);
    EXPECT_TRUE(cert_accepted(g, labels, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CertCompleteness, ::testing::Range(0, 6));

TEST(TreeCert, TruncatedCertificatesStayComplete) {
  for (int b = 1; b <= 6; ++b) {
    const Graph g = gen::cycle(11);
    const auto labels = make_tree_cert_labels(g, bfs_tree(g, 4), b);
    EXPECT_TRUE(cert_accepted(g, labels, b)) << "b=" << b;
  }
}

TEST(TreeCert, WrongDistanceRejected) {
  const Graph g = gen::cycle(7);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 0), 0);
  labels[3].dist += 1;
  EXPECT_FALSE(cert_accepted(g, labels, 0));
}

TEST(TreeCert, WrongSubtreeCountRejected) {
  const Graph g = gen::random_tree(9, 3);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 0), 0);
  labels[5].subtree += 1;
  EXPECT_FALSE(cert_accepted(g, labels, 0));
}

TEST(TreeCert, WrongTotalRejected) {
  const Graph g = gen::random_connected(8, 0.3, 1);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 2), 0);
  for (TreeCert& cert : labels) cert.total += 2;  // consistent lie
  EXPECT_FALSE(cert_accepted(g, labels, 0));      // root: total != subtree
}

TEST(TreeCert, ForeignRootIdRejected) {
  const Graph g = gen::cycle(6);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 0), 0);
  for (TreeCert& cert : labels) cert.root_id = 999;  // nonexistent id
  EXPECT_FALSE(cert_accepted(g, labels, 0));
}

TEST(TreeCert, DisagreeingRootIdsRejected) {
  const Graph g = gen::path(6);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 0), 0);
  labels[4].root_id = g.id(5);
  EXPECT_FALSE(cert_accepted(g, labels, 0));
}

TEST(TreeCert, TwoRootsRejected) {
  // Two halves of a path, each with its own certificate, glued: the dist
  // fields clash at the seam.
  const Graph g = gen::path(8);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 0), 0);
  const auto other = make_tree_cert_labels(g, bfs_tree(g, 7), 0);
  for (int v = 4; v < 8; ++v) {
    labels[static_cast<std::size_t>(v)] = other[static_cast<std::size_t>(v)];
  }
  EXPECT_FALSE(cert_accepted(g, labels, 0));
}

TEST(TreeCert, BadParentPortRejected) {
  const Graph g = gen::cycle(5);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 0), 0);
  labels[2].parent_port = 7;  // out of range
  EXPECT_FALSE(cert_accepted(g, labels, 0));
}

TEST(TreeCert, IdWiderThanDeclaredWidthRejected) {
  Graph g;
  g.add_node(1);
  g.add_node(1000000);  // needs 20 bits
  g.add_edge(0, 1);
  auto labels = make_tree_cert_labels(g, bfs_tree(g, 0), 0);
  for (TreeCert& cert : labels) cert.width = 4;  // too narrow for the ids
  // Re-encode with narrow width: values get chopped; some check must fail.
  EXPECT_FALSE(cert_accepted(g, labels, 0));
}

TEST(TreeCert, NominalSizeIsLogarithmic) {
  EXPECT_LT(tree_cert_bits(1000, 1000), 60);
  EXPECT_LT(tree_cert_bits(1 << 20, 1 << 20), 100);
}

}  // namespace
}  // namespace lcp
