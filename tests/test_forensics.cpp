// Rejection-forensics correctness, fuzzed over churn streams:
//
//   (a) observability is free of observable effects — a session with
//       journal + forensics + telemetry on produces bit-identical
//       verdicts, rejecting sets, graph fingerprints, and tracker state
//       fingerprints to a bare session fed the same stream;
//   (b) every shrunken minimal batch still rejects when plain-applied to
//       the pre-flip state, and never exceeds the original window;
//   (c) every witness ball independently re-verifies as rejecting — the
//       paper's locality argument made concrete: the report carries the
//       exact radius-r evidence, checkable with no engine or session.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "algo/matching.hpp"
#include "core/delta.hpp"
#include "core/engine.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "obs/forensics.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

int pick_node(std::mt19937& rng, const Graph& g) {
  return std::uniform_int_distribution<int>(0, g.n() - 1)(rng);
}

std::pair<int, int> pick_absent_edge(std::mt19937& rng, const Graph& g) {
  for (int tries = 0; tries < 32; ++tries) {
    const int u = pick_node(rng, g);
    const int v = pick_node(rng, g);
    if (u != v && !g.has_edge(u, v)) return {u, v};
  }
  return {-1, -1};
}

std::pair<int, int> pick_present_edge(std::mt19937& rng, const Graph& g) {
  if (g.m() == 0) return {-1, -1};
  const int e = std::uniform_int_distribution<int>(0, g.m() - 1)(rng);
  return {g.edge_u(e), g.edge_v(e)};
}

/// A leader-election start state: connected, node 0 flagged.
Graph leader_start(int n, unsigned seed) {
  Graph g = gen::random_connected(n, 0.1, seed);
  g.set_label(0, schemes::kLeaderFlag);
  return g;
}

/// Flags the greedy maximal matching in-place (matched bit on edge labels).
void flag_matching(Graph* g) {
  const std::vector<bool> matched = greedy_maximal_matching(*g);
  for (int e = 0; e < g->m(); ++e) {
    if (matched[static_cast<std::size_t>(e)]) {
      g->set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
    }
  }
}

// ---------------------------------------------------------------------------
// apply_plain mirrors the tracker.
// ---------------------------------------------------------------------------

TEST(ApplyPlain, MatchesTrackerAcrossAllOpKinds) {
  Graph g = gen::random_connected(12, 0.2, 7);
  Proof p = Proof::empty(g.n());
  Graph mirror_g = g;
  Proof mirror_p = p;

  MutationBatch batch;
  batch.set_node_label(3, 42);
  batch.set_edge_label(g.edge_u(0), g.edge_v(0), 9);
  batch.set_edge_weight(g.edge_u(1), g.edge_v(1), -5);
  batch.set_proof_label(4, BitString::from_string("1011"));
  const auto [au, av] = [&] {
    for (int u = 0; u < g.n(); ++u) {
      for (int v = u + 1; v < g.n(); ++v) {
        if (!g.has_edge(u, v)) return std::pair<int, int>{u, v};
      }
    }
    return std::pair<int, int>{-1, -1};
  }();
  batch.add_edge(au, av, 1, 2);
  batch.remove_edge(g.edge_u(2), g.edge_v(2));
  batch.add_node(999, 5);

  DeltaTracker tracker(g, p, /*horizon=*/2);
  tracker.apply(batch);
  ASSERT_TRUE(obs::apply_plain(batch, &mirror_g, &mirror_p));
  EXPECT_EQ(graph_fingerprint(g), graph_fingerprint(mirror_g));
  EXPECT_EQ(DeltaTracker::state_fingerprint_of(g, p),
            DeltaTracker::state_fingerprint_of(mirror_g, mirror_p));
}

TEST(ApplyPlain, RefusesInapplicableOps) {
  Graph g = gen::path(4);
  Proof p = Proof::empty(g.n());
  {
    MutationBatch bad;
    bad.remove_edge(0, 3);  // absent
    Graph c = g;
    Proof q = p;
    EXPECT_FALSE(obs::apply_plain(bad, &c, &q));
  }
  {
    MutationBatch bad;
    bad.add_edge(0, 1);  // already present
    Graph c = g;
    Proof q = p;
    EXPECT_FALSE(obs::apply_plain(bad, &c, &q));
  }
  {
    MutationBatch bad;
    bad.add_node(g.id(0));  // duplicate id
    Graph c = g;
    Proof q = p;
    EXPECT_FALSE(obs::apply_plain(bad, &c, &q));
  }
  {
    MutationBatch bad;
    bad.set_node_label(99, 1);  // out of range
    Graph c = g;
    Proof q = p;
    EXPECT_FALSE(obs::apply_plain(bad, &c, &q));
  }
}

// ---------------------------------------------------------------------------
// (a) Observability changes nothing observable.
// ---------------------------------------------------------------------------

TEST(ForensicsFuzz, VerdictsBitIdenticalWithForensicsOnAndOff) {
  const Graph start = leader_start(20, 20260808);
  auto plain = VerificationSession::on(start)
                   .scheme("leader-election")
                   .engine(EngineKind::kIncremental)
                   .maintain(true)
                   .build();
  auto instrumented = VerificationSession::on(start)
                          .scheme("leader-election")
                          .engine(EngineKind::kIncremental)
                          .maintain(true)
                          .telemetry(true)
                          .journal(true)
                          .forensics(true)
                          .build();

  std::mt19937 rng(101);
  int leader = 0;
  bool leaderless = false;
  int flips_seen = 0;
  for (int step = 0; step < 120; ++step) {
    const Graph& g = plain.graph();
    MutationBatch batch;
    const int roll = std::uniform_int_distribution<int>(0, 99)(rng);
    if (roll < 35) {
      const auto [u, v] = pick_absent_edge(rng, g);
      if (u >= 0) batch.add_edge(u, v);
    } else if (roll < 60) {
      const auto [u, v] = pick_present_edge(rng, g);
      if (u >= 0) batch.remove_edge(u, v);
    } else if (roll < 80) {
      const int v = pick_node(rng, g);
      if (!leaderless && v != leader) {
        batch.set_node_label(leader, 0);
        batch.set_node_label(v, schemes::kLeaderFlag);
        leader = v;
      }
    } else if (roll < 90) {
      // Input tamper: clear the leader flag so no valid proof exists and
      // the verdict flips to reject (reprove cannot heal a false
      // property) — the forensic capture path.
      if (!leaderless) {
        batch.set_node_label(leader, 0);
        leaderless = true;
      }
    } else {
      if (leaderless) {
        batch.set_node_label(leader, schemes::kLeaderFlag);
        leaderless = false;
      }
    }
    if (batch.empty()) continue;

    const RunResult want = plain.apply(batch);
    const RunResult got = instrumented.apply(batch);
    ASSERT_EQ(want.all_accept, got.all_accept) << "step " << step;
    ASSERT_EQ(want.rejecting, got.rejecting) << "step " << step;
    ASSERT_EQ(graph_fingerprint(plain.graph()),
              graph_fingerprint(instrumented.graph()))
        << "step " << step;
    ASSERT_EQ(plain.tracker().state_fingerprint(),
              instrumented.tracker().state_fingerprint())
        << "step " << step;
    if (!want.all_accept && instrumented.last_rejection().has_value()) {
      ++flips_seen;
    }
  }
  // The stream must actually have exercised the capture machinery.
  EXPECT_TRUE(instrumented.last_rejection().has_value() || flips_seen > 0);
  EXPECT_GT(instrumented.journal()->total_emitted(), 0u);
  EXPECT_FALSE(plain.last_rejection().has_value());
}

// ---------------------------------------------------------------------------
// (b) + (c) Shrunken batches still reject; witnesses re-verify.
// ---------------------------------------------------------------------------

/// Checks one report against the pre/post states the test mirrored.
void check_report(const obs::RejectionReport& report,
                  const Graph& pre_graph, const Proof& pre_proof,
                  const Graph& post_graph, const Proof& post_proof,
                  const LocalVerifier& verifier, const RunResult& result,
                  std::size_t window_ops, int step) {
  // The shrink never grows the window and always still rejects.
  ASSERT_FALSE(report.minimal_batch.empty()) << "step " << step;
  ASSERT_LE(report.minimal_batch.size(), window_ops) << "step " << step;
  if (report.raw_batch_rejects) {
    ASSERT_LE(report.minimal_batch.size(), report.mutation_batch.size())
        << "step " << step;
  }
  Graph g = pre_graph;
  Proof p = pre_proof;
  ASSERT_TRUE(obs::apply_plain(report.minimal_batch, &g, &p))
      << "step " << step;
  const RunResult shrunk = sweep_sequential(g, p, verifier);
  ASSERT_FALSE(shrunk.all_accept) << "step " << step;

  // Every witness is self-contained rejecting evidence, and its view is
  // bit-identical to a fresh extraction from the post state.
  ASSERT_FALSE(report.witnesses.empty()) << "step " << step;
  for (const obs::RejectionWitness& w : report.witnesses) {
    ASSERT_TRUE(std::binary_search(result.rejecting.begin(),
                                   result.rejecting.end(), w.center))
        << "step " << step;
    EXPECT_FALSE(verifier.accept(w.view))
        << "witness " << w.center << " step " << step;
    const View fresh =
        extract_view(post_graph, post_proof, w.center, verifier.radius());
    EXPECT_TRUE(views_bit_identical(w.view, fresh))
        << "witness " << w.center << " step " << step;
  }

  // Context and serialisation.
  EXPECT_EQ(report.rejecting, result.rejecting) << "step " << step;
  EXPECT_EQ(report.radius, verifier.radius()) << "step " << step;
  const std::string json = report.to_json();
  for (const char* key :
       {"\"batch_index\":", "\"scheme\":", "\"engine\":", "\"witnesses\":",
        "\"minimal_batch\":", "\"journal_window\":", "\"repair_history\":",
        "\"raw_batch_rejects\":", "\"shrink_evals\":"}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << key << " step " << step;
  }
}

TEST(ForensicsFuzz, ComposedSchemeUnderChurnYieldsReVerifiableReports) {
  Graph start = leader_start(18, 424242);
  flag_matching(&start);
  auto session = VerificationSession::on(start)
                     .scheme("leader-election & maximal-matching")
                     .engine(EngineKind::kIncremental)
                     .maintain(true)
                     .journal(true)
                     .forensics(true)
                     .build();

  std::mt19937 rng(77);
  int leader = 0;
  bool tampered = false;
  int reports_checked = 0;
  for (int step = 0; step < 140 || reports_checked == 0; ++step) {
    ASSERT_LT(step, 400) << "stream never produced a rejection report";
    const Graph& g = session.graph();
    MutationBatch batch;
    const int roll = std::uniform_int_distribution<int>(0, 99)(rng);
    if (roll < 30) {
      const auto [u, v] = pick_absent_edge(rng, g);
      if (u >= 0) batch.add_edge(u, v);
    } else if (roll < 50) {
      const auto [u, v] = pick_present_edge(rng, g);
      if (u >= 0) batch.remove_edge(u, v);
    } else if (roll < 70) {
      const int v = pick_node(rng, g);
      if (!tampered && v != leader) {
        batch.set_node_label(leader, 0);
        batch.set_node_label(v, schemes::kLeaderFlag);
        leader = v;
      }
    } else if (roll < 85) {
      // The tamper: strip the leader flag, sometimes alongside innocent
      // churn ops the shrink should discard.
      if (!tampered) {
        if (roll < 78) {
          const auto [u, v] = pick_absent_edge(rng, g);
          if (u >= 0) batch.add_edge(u, v);
        }
        batch.set_node_label(leader, 0);
        tampered = true;
      }
    } else {
      if (tampered) {
        batch.set_node_label(leader, schemes::kLeaderFlag);
        tampered = false;
      }
    }
    if (batch.empty()) continue;

    const Graph pre_graph = session.graph();
    const Proof pre_proof = session.proof();
    const bool had_report = session.last_rejection().has_value();
    const std::uint64_t before_index =
        had_report ? session.last_rejection()->batch_index : 0;

    const RunResult result = session.apply(batch);

    const auto& report = session.last_rejection();
    const bool fresh_report =
        report.has_value() &&
        (!had_report || report->batch_index != before_index);
    if (fresh_report) {
      ASSERT_FALSE(result.all_accept) << "step " << step;
      const std::size_t window_ops =
          report->mutation_batch.size() + report->repair_batch.size();
      check_report(*report, pre_graph, pre_proof, session.graph(),
                   session.proof(), session.scheme().verifier(), result,
                   window_ops, step);
      EXPECT_EQ(report->scheme, session.scheme().name());
      EXPECT_EQ(report->engine, "incremental");
      EXPECT_FALSE(report->journal_window.empty()) << "step " << step;
      ++reports_checked;
    }
  }
  EXPECT_GE(reports_checked, 1);
  EXPECT_GT(session.stats().repaired, 0u);
}

TEST(ForensicsFuzz, ReportsAcrossEngineBackends) {
  // The capture path is engine-agnostic: every backend that can drive a
  // session must produce a re-verifiable report on the same tamper.
  for (const EngineKind kind :
       {EngineKind::kDirect, EngineKind::kParallel,
        EngineKind::kIncremental, EngineKind::kSharded}) {
    Graph start = leader_start(14, 9001);
    auto session = VerificationSession::on(std::move(start))
                       .scheme("leader-election")
                       .engine(kind)
                       .maintain(true)
                       .journal(true)
                       .forensics(true)
                       .build();
    // A healthy batch first, then the tamper.
    MutationBatch grow;
    grow.add_node(session.graph().max_id() + 1);
    grow.add_edge(session.graph().n(), 0);
    ASSERT_TRUE(session.apply(grow).all_accept)
        << "engine " << static_cast<int>(kind);

    const Graph pre_graph = session.graph();
    const Proof pre_proof = session.proof();
    MutationBatch tamper;
    tamper.set_node_label(0, 0);  // no leader anywhere
    const RunResult result = session.apply(tamper);
    ASSERT_FALSE(result.all_accept) << "engine " << static_cast<int>(kind);
    ASSERT_TRUE(session.last_rejection().has_value())
        << "engine " << static_cast<int>(kind);
    const obs::RejectionReport& report = *session.last_rejection();
    check_report(report, pre_graph, pre_proof, session.graph(),
                 session.proof(), session.scheme().verifier(), result,
                 report.mutation_batch.size() + report.repair_batch.size(),
                 static_cast<int>(kind));
    // The engines diff verdicts at the wrapper level, so the flip set is
    // known on every backend and the tampered centre is in it.
    EXPECT_FALSE(report.newly_rejecting.empty())
        << "engine " << static_cast<int>(kind);
  }
}

TEST(Forensics, ShrinkIsolatesTheTamperFromInnocentChurn) {
  // One batch carrying three innocent edge ops and one fatal label clear:
  // the greedy shrink must drop the noise and keep (at most a superset
  // containing) the tamper — and here, exactly the single fatal op.
  Graph start = leader_start(16, 5150);
  auto session = VerificationSession::on(std::move(start))
                     .scheme("leader-election")
                     .engine(EngineKind::kDirect)
                     .maintain(true)
                     .forensics(true)
                     .build();
  std::mt19937 rng(3);
  MutationBatch batch;
  for (int i = 0; i < 3; ++i) {
    const auto [u, v] = pick_absent_edge(rng, session.graph());
    if (u >= 0 && !session.graph().has_edge(u, v)) batch.add_edge(u, v);
  }
  batch.set_node_label(0, 0);  // the tamper

  const RunResult result = session.apply(batch);
  ASSERT_FALSE(result.all_accept);
  ASSERT_TRUE(session.last_rejection().has_value());
  const obs::RejectionReport& report = *session.last_rejection();
  EXPECT_TRUE(report.raw_batch_rejects);
  ASSERT_EQ(report.minimal_batch.size(), 1u);
  EXPECT_EQ(report.minimal_batch.ops()[0].kind,
            MutationBatch::Kind::kNodeLabel);
  EXPECT_EQ(report.minimal_batch.ops()[0].u, 0);
  EXPECT_GT(report.shrink_evals, 0u);
}

TEST(Forensics, ClearedAfterRequestAndAbsentWhenDisabled) {
  Graph start = leader_start(10, 31);
  auto session = VerificationSession::on(std::move(start))
                     .scheme("leader-election")
                     .engine(EngineKind::kIncremental)
                     .maintain(true)
                     .forensics(true)
                     .build();
  MutationBatch tamper;
  tamper.set_node_label(0, 0);
  ASSERT_FALSE(session.apply(tamper).all_accept);
  ASSERT_TRUE(session.last_rejection().has_value());
  session.clear_last_rejection();
  EXPECT_FALSE(session.last_rejection().has_value());
  // Still rejecting is not a new flip: no fresh report until re-accept.
  MutationBatch noise;
  noise.add_node(session.graph().max_id() + 1);
  noise.add_edge(session.graph().n(), 1);
  EXPECT_FALSE(session.apply(noise).all_accept);
  EXPECT_FALSE(session.last_rejection().has_value());
}

}  // namespace
}  // namespace lcp
