// Spot-check reproducibility: sampling is a pure function of (seed, dirty
// history), independent of the wrapped exact backend.
//
// Three SpotCheckEngine lanes share one seed but wrap Direct, Incremental
// and Sharded inners, each over its own replica of the mutated pair; fed
// the identical schedule they must produce identical sample sets,
// verdicts, tracker fingerprints, and error-accounting stats on every
// step.  Different seeds over the same schedule must diverge on a solid
// fraction of the sampled steps — per-seed streams are distinct, not just
// shifted.
//
// The IncrementalEngine half pins the satellite fix this suite rides on:
// last_dirty_centers() is a stable (sorted, mode-independent) iteration
// surface over the dirty set.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/delta.hpp"
#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "core/spot_check.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

/// Rejects on a length-3 proof: the schedule writes one occasionally, so
/// escalation paths run too — and must stay lockstep across lanes.
std::unique_ptr<LocalVerifier> length_verifier() {
  return std::make_unique<LambdaVerifier>(
      1, [](const View& v) { return v.proof_of(v.center).size() != 3; });
}

struct Lane {
  std::string name;
  Graph graph;
  Proof proof;
  std::unique_ptr<DeltaTracker> tracker;
  std::unique_ptr<SpotCheckEngine> engine;
};

std::unique_ptr<Lane> make_lane(const std::string& inner, const Graph& g,
                                const Proof& p, SpotCheckOptions options) {
  auto lane = std::make_unique<Lane>();
  lane->name = inner;
  lane->graph = g;
  lane->proof = p;
  lane->tracker = std::make_unique<DeltaTracker>(lane->graph, lane->proof, 1);
  lane->engine =
      std::make_unique<SpotCheckEngine>(make_engine(inner), options);
  EXPECT_TRUE(lane->engine->attach_tracker(lane->tracker.get()));
  return lane;
}

/// One deterministic schedule step appended to `batch` (proof churn, node
/// relabels, edge add/remove), drawn against lane 0's graph.
void schedule_step(std::mt19937& rng, const Graph& g, MutationBatch* batch) {
  const int ops = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < ops; ++i) {
    const int node =
        std::uniform_int_distribution<int>(0, g.n() - 1)(rng);
    switch (rng() % 5) {
      case 0:
      case 1: {  // proof rewrite, length 0-2 accepts, 3 rejects (rare)
        BitString bits;
        const int len =
            rng() % 12 == 0 ? 3 : static_cast<int>(rng() % 3);
        for (int b = 0; b < len; ++b) bits.append_bit(rng() % 2 != 0);
        batch->set_proof_label(node, bits);
        break;
      }
      case 2:
        batch->set_node_label(node, rng() % 4);
        break;
      case 3: {  // edge insertion
        const int u = std::uniform_int_distribution<int>(0, g.n() - 1)(rng);
        if (u != node && !g.has_edge(u, node)) batch->add_edge(u, node);
        break;
      }
      default: {  // edge removal (keep the graph from emptying)
        if (g.m() > g.n()) {
          const int e =
              std::uniform_int_distribution<int>(0, g.m() - 1)(rng);
          batch->remove_edge(g.edge_u(e), g.edge_v(e));
        }
        break;
      }
    }
  }
}

TEST(SpotCheckDeterminism, SameSeedSameSamplesAcrossInnerBackends) {
  const Graph start = gen::random_connected(36, 0.09, 5);
  const Proof p0 = Proof::empty(start.n());
  auto verifier = length_verifier();
  const SpotCheckOptions options{.budget = 0.3, .seed = 0xfeedULL};

  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(make_lane("direct", start, p0, options));
  lanes.push_back(make_lane("incremental", start, p0, options));
  lanes.push_back(make_lane("sharded:2", start, p0, options));

  std::mt19937 rng(20260808);
  std::size_t sampled_steps = 0;
  for (int step = 0; step < 80; ++step) {
    MutationBatch batch;
    schedule_step(rng, lanes[0]->graph, &batch);
    if (batch.empty()) continue;
    for (auto& lane : lanes) lane->tracker->apply(batch);

    const RunResult want =
        lanes[0]->engine->run(lanes[0]->graph, lanes[0]->proof, *verifier);
    const std::vector<int>& want_sample = lanes[0]->engine->last_sample();
    if (!want_sample.empty()) ++sampled_steps;
    // The sample is sorted ascending by contract.
    for (std::size_t i = 1; i < want_sample.size(); ++i) {
      ASSERT_LT(want_sample[i - 1], want_sample[i]) << "step " << step;
    }
    const std::uint64_t want_fp = lanes[0]->tracker->state_fingerprint();
    for (std::size_t li = 1; li < lanes.size(); ++li) {
      Lane& lane = *lanes[li];
      const RunResult got =
          lane.engine->run(lane.graph, lane.proof, *verifier);
      ASSERT_EQ(want.all_accept, got.all_accept)
          << lane.name << " step " << step;
      ASSERT_EQ(want.rejecting, got.rejecting)
          << lane.name << " step " << step;
      ASSERT_EQ(want_sample, lane.engine->last_sample())
          << lane.name << " step " << step;
      ASSERT_EQ(want_fp, lane.tracker->state_fingerprint())
          << lane.name << " step " << step;
    }
  }
  EXPECT_GT(sampled_steps, 40u);

  // Identical histories must close with identical accounting, backend
  // notwithstanding.
  const SpotCheckEngine::Stats& want = lanes[0]->engine->stats();
  EXPECT_GT(want.sampled_runs, 0u);
  EXPECT_GT(want.escalations, 0u);  // the schedule plants rejections
  for (std::size_t li = 1; li < lanes.size(); ++li) {
    const SpotCheckEngine::Stats& got = lanes[li]->engine->stats();
    EXPECT_EQ(want.exact_runs, got.exact_runs) << lanes[li]->name;
    EXPECT_EQ(want.sampled_runs, got.sampled_runs) << lanes[li]->name;
    EXPECT_EQ(want.unchanged_runs, got.unchanged_runs) << lanes[li]->name;
    EXPECT_EQ(want.balls_sampled, got.balls_sampled) << lanes[li]->name;
    EXPECT_EQ(want.balls_skipped, got.balls_skipped) << lanes[li]->name;
    EXPECT_EQ(want.escalations, got.escalations) << lanes[li]->name;
    EXPECT_EQ(want.pool_size, got.pool_size) << lanes[li]->name;
    EXPECT_DOUBLE_EQ(want.miss_bound, got.miss_bound) << lanes[li]->name;
  }
  for (auto& lane : lanes) lane->engine->attach_tracker(nullptr);
}

TEST(SpotCheckDeterminism, DifferentSeedsDivergeOnMostSampledSteps) {
  const Graph start = gen::random_connected(36, 0.09, 5);
  const Proof p0 = Proof::empty(start.n());
  auto verifier = length_verifier();

  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(make_lane("incremental", start, p0,
                            {.budget = 0.3, .seed = 1}));
  lanes.push_back(make_lane("incremental", start, p0,
                            {.budget = 0.3, .seed = 2}));

  std::mt19937 rng(20260808);
  std::size_t sampled = 0;
  std::size_t diverged = 0;
  for (int step = 0; step < 80; ++step) {
    MutationBatch batch;
    schedule_step(rng, lanes[0]->graph, &batch);
    if (batch.empty()) continue;
    for (auto& lane : lanes) lane->tracker->apply(batch);
    for (auto& lane : lanes) {
      lane->engine->run(lane->graph, lane->proof, *verifier);
    }
    const std::vector<int>& a = lanes[0]->engine->last_sample();
    const std::vector<int>& b = lanes[1]->engine->last_sample();
    // Only compare steps where both lanes sampled from a pool larger than
    // the sample (a full-pool sample is forced, not a coin flip).
    if (a.empty() || b.empty()) continue;
    ++sampled;
    if (a != b) ++diverged;
  }
  ASSERT_GT(sampled, 20u);
  // "Disjoint enough": well over half the sampled steps pick different
  // sets under a different seed.
  EXPECT_GT(diverged * 2, sampled);
  for (auto& lane : lanes) lane->engine->attach_tracker(nullptr);
}

// ---------------------------------------------------------------------------
// The stable dirty-set iteration surface (IncrementalEngine satellite).
// ---------------------------------------------------------------------------

TEST(SpotCheckDeterminism, LastDirtyCentersIsSortedAndModeIndependent) {
  const Graph start = gen::random_connected(30, 0.1, 9);
  auto verifier = length_verifier();

  struct IncLane {
    Graph graph;
    Proof proof;
    std::unique_ptr<DeltaTracker> tracker;
    IncrementalEngine engine;
    IncLane(const Graph& g, IncrementalEngineOptions options)
        : graph(g), proof(Proof::empty(g.n())), engine(std::move(options)) {
      tracker = std::make_unique<DeltaTracker>(graph, proof, 1);
      EXPECT_TRUE(engine.attach_tracker(tracker.get()));
    }
  };
  IncLane patched(start, {.patch_views = true});
  IncLane reextract(start, {.patch_views = false});

  std::mt19937 rng(321);
  std::size_t nonempty = 0;
  for (int step = 0; step < 60; ++step) {
    MutationBatch batch;
    schedule_step(rng, patched.graph, &batch);
    if (batch.empty()) continue;
    patched.tracker->apply(batch);
    reextract.tracker->apply(batch);
    patched.engine.run(patched.graph, patched.proof, *verifier);
    reextract.engine.run(reextract.graph, reextract.proof, *verifier);

    const std::vector<int>& a = patched.engine.last_dirty_centers();
    const std::vector<int>& b = reextract.engine.last_dirty_centers();
    ASSERT_EQ(a, b) << "step " << step;
    for (std::size_t i = 1; i < a.size(); ++i) {
      ASSERT_LT(a[i - 1], a[i]) << "step " << step;
    }
    if (!a.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 30u);
  patched.engine.attach_tracker(nullptr);
  reextract.engine.attach_tracker(nullptr);
}

}  // namespace
}  // namespace lcp
