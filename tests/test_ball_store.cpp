// BallStore semantics: refcounted sharing, copy-on-write isolation
// (engines sharing a store never observe each other's in-flight patches),
// LRU eviction under the memory cap, hit/miss counters, and the staleness
// regression — a store must never serve balls for a graph state they were
// not extracted from, even when an IncrementalEngine's lazily-invalidated
// graph fingerprint is in play and mutations are later reverted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/ball_store.hpp"
#include "core/delta.hpp"
#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

/// Structure- and proof-sensitive radius-1 verifier.
const LocalVerifier& parity_verifier() {
  static const LambdaVerifier v(1, [](const View& view) {
    return (view.proof_of(view.center).size() +
            static_cast<std::size_t>(view.ball.degree(view.center))) %
               2 ==
           0;
  });
  return v;
}

Proof sized_proof(int n, int stride) {
  Proof p = Proof::empty(n);
  for (int v = 0; v < n; ++v) {
    for (int i = 0; i < (v * stride) % 3; ++i) {
      p.labels[static_cast<std::size_t>(v)].append_bit(true);
    }
  }
  return p;
}

void expect_equal(const RunResult& want, const RunResult& got,
                  const std::string& context) {
  ASSERT_EQ(want.all_accept, got.all_accept) << context;
  ASSERT_EQ(want.rejecting, got.rejecting) << context;
}

TEST(BallStore, ExclusiveBallClonesOnlyWhenShared) {
  auto ball = std::make_shared<CachedNodeView>();
  ball->host = {1, 2, 3};
  CachedNodeView* raw = ball.get();
  // Sole owner: no clone.
  EXPECT_EQ(&exclusive_ball(ball), raw);
  // Shared: mutation must clone, leaving the second owner untouched.
  BallPtr other = ball;
  CachedNodeView& mine = exclusive_ball(ball);
  EXPECT_NE(&mine, other.get());
  mine.host.push_back(4);
  EXPECT_EQ(other->host.size(), 3u);
  EXPECT_EQ(ball->host.size(), 4u);
}

TEST(BallStore, RefreshBallProofsIsLazyAndCOW) {
  Graph g = gen::cycle(4);
  Proof p = sized_proof(4, 1);
  auto ball = std::make_shared<CachedNodeView>();
  ball->view = extract_view(g, p, 0, 1);
  ball->host = {0, 1, 3};  // cycle(4): ball of 0 at radius 1
  BallPtr shared_copy = ball;
  // Identical proofs: no clone happens.
  refresh_ball_proofs(ball, p);
  EXPECT_EQ(ball.get(), shared_copy.get());
  // Changed proof: the refresh clones, the sharer keeps the old labels.
  Proof p2 = p;
  p2.labels[0].append_bit(false);
  refresh_ball_proofs(ball, p2);
  EXPECT_NE(ball.get(), shared_copy.get());
  EXPECT_TRUE(shared_copy->view.proofs[0] == p.labels[0]);
  EXPECT_TRUE(ball->view.proofs[0] == p2.labels[0]);
}

TEST(BallStore, LookupSharesPointersAndCounts) {
  BallStore store;
  std::vector<BallPtr> balls;
  for (int i = 0; i < 3; ++i) {
    auto b = std::make_shared<CachedNodeView>();
    b->host = {i};
    balls.push_back(std::move(b));
  }
  std::vector<BallPtr> out;
  EXPECT_FALSE(store.lookup(7, 1, &out));
  EXPECT_EQ(store.stats().misses, 1u);

  EXPECT_TRUE(store.publish(7, 1, balls, 3));
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.ball_nodes(), 3u);
  ASSERT_TRUE(store.lookup(7, 1, &out));
  EXPECT_EQ(store.stats().hits, 1u);
  ASSERT_EQ(out.size(), 3u);
  // Shared ownership, not copies.
  EXPECT_EQ(out[0].get(), balls[0].get());
  EXPECT_EQ(store.lookup_ball(7, 1, 2).get(), balls[2].get());
  EXPECT_EQ(store.lookup_ball(7, 1, 5), nullptr);
  EXPECT_EQ(store.lookup_ball(8, 1, 0), nullptr);
}

TEST(BallStore, EvictionUnderMemoryCapAndEntryCap) {
  BallStore store({.max_ball_nodes = 10, .max_entries = 2});
  auto entry = [](int nodes) {
    std::vector<BallPtr> balls;
    for (int i = 0; i < nodes; ++i) {
      balls.push_back(std::make_shared<CachedNodeView>());
    }
    return balls;
  };
  EXPECT_TRUE(store.publish(1, 1, entry(4), 4));
  EXPECT_TRUE(store.publish(2, 1, entry(4), 4));
  EXPECT_EQ(store.entry_count(), 2u);
  // Third entry exceeds the entry cap: LRU (fingerprint 1) is evicted.
  EXPECT_TRUE(store.publish(3, 1, entry(4), 4));
  EXPECT_EQ(store.entry_count(), 2u);
  EXPECT_GE(store.stats().evictions, 1u);
  std::vector<BallPtr> out;
  EXPECT_FALSE(store.lookup(1, 1, &out));
  // An entry pushing the ball budget evicts down to fit.
  EXPECT_TRUE(store.publish(4, 1, entry(9), 9));
  EXPECT_LE(store.ball_nodes(), 10u);
  ASSERT_TRUE(store.lookup(4, 1, &out));
  // An entry larger than the whole budget is rejected and remembered.
  EXPECT_FALSE(store.publish(5, 1, entry(11), 11));
  EXPECT_TRUE(store.uncacheable(5, 1));
  EXPECT_FALSE(store.lookup(5, 1, &out));
  EXPECT_GE(store.stats().rejected, 1u);
}

TEST(BallStore, ConcurrentPublishLookupSmoke) {
  // Hammer one store from several threads — publishes, full lookups,
  // single-ball lookups, stats reads, COW mutations of adopted balls —
  // and check the counters reconcile once quiet.  Run under TSan this
  // pins the locking contract (mutex for the tables, relaxed atomics for
  // the counters, shared_ptr refcounts for the balls).
  BallStore store({.max_ball_nodes = 1 << 12, .max_entries = 3});
  constexpr int kThreads = 4;
  constexpr int kRounds = 400;
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<std::uint64_t> observed_misses{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, &observed_hits, &observed_misses, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::uint64_t fp = static_cast<std::uint64_t>(round % 5 + 1);
        if ((round + t) % 3 == 0) {
          std::vector<BallPtr> balls;
          for (int i = 0; i < 4; ++i) {
            auto b = std::make_shared<CachedNodeView>();
            b->host = {t, round, i};
            balls.push_back(std::move(b));
          }
          (void)store.publish(fp, 1, std::move(balls), 4);
        } else {
          std::vector<BallPtr> out;
          if (store.lookup(fp, 1, &out)) {
            observed_hits.fetch_add(1, std::memory_order_relaxed);
            // Mutate through our own slot: COW must keep the store's copy
            // (and other threads' adopted copies) untouched.
            CachedNodeView& mine = exclusive_ball(out[0]);
            mine.host.push_back(-1);
          } else {
            observed_misses.fetch_add(1, std::memory_order_relaxed);
          }
          (void)store.lookup_ball(fp, 1, round % 6);
          (void)store.stats();  // lock-free read while others write
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const BallStoreStats stats = store.stats();
  // Every full-lookup outcome the threads observed is tallied; lookup_ball
  // adds more, so the totals are lower bounds.
  EXPECT_GE(stats.hits + stats.misses,
            observed_hits.load() + observed_misses.load());
  EXPECT_GT(stats.publishes, 0u);
  EXPECT_LE(store.entry_count(), 3u);
  EXPECT_LE(store.ball_nodes(), std::size_t{1} << 12);
  // The store's resident balls were never grown by the COW mutations.
  std::vector<BallPtr> out;
  for (std::uint64_t fp = 1; fp <= 5; ++fp) {
    if (!store.lookup(fp, 1, &out)) continue;
    for (const BallPtr& b : out) {
      EXPECT_EQ(b->host.size(), 3u);
    }
  }
}

TEST(BallStore, DirectEngineWarmsDirectEngine) {
  const Graph g = gen::random_connected(30, 0.15, 17);
  const Proof p = sized_proof(30, 1);
  auto store = std::make_shared<BallStore>();
  DirectEngine fresh({/*cache_views=*/false});
  const RunResult want = fresh.run(g, p, parity_verifier());

  DirectEngine a({.store = store});
  expect_equal(want, a.run(g, p, parity_verifier()), "producer");
  EXPECT_EQ(store->stats().publishes, 1u);

  DirectEngine b({.store = store});
  expect_equal(want, b.run(g, p, parity_verifier()), "adopter");
  EXPECT_GE(store->stats().hits, 1u);

  // A's later proof refresh must stay invisible to B and to the store.
  Proof p2 = p;
  p2.labels[0].append_bit(true);
  const RunResult want2 = fresh.run(g, p2, parity_verifier());
  expect_equal(want2, a.run(g, p2, parity_verifier()), "producer mutated");
  expect_equal(want, b.run(g, p, parity_verifier()), "adopter unaffected");

  DirectEngine c({.store = store});
  expect_equal(want2, c.run(g, p2, parity_verifier()),
               "late adopter under new proof");
}

TEST(BallStore, ParallelSweepFeedsIncrementalEngine) {
  Graph g = gen::random_connected(40, 0.1, 23);
  Proof p = sized_proof(40, 2);
  auto store = std::make_shared<BallStore>();
  DirectEngine fresh({/*cache_views=*/false});
  const RunResult want = fresh.run(g, p, parity_verifier());

  // Warm parallel sweep publishes into the store...
  ParallelEngine parallel(3, /*persistent_pool=*/true, store);
  expect_equal(want, parallel.run(g, p, parity_verifier()), "parallel");
  EXPECT_TRUE(store->contains(graph_fingerprint(g), 1));

  // ...and the incremental engine's first full sweep adopts it instead of
  // extracting.
  DeltaTracker tracker(g, p, 1);
  IncrementalEngine inc({.store = store});
  ASSERT_TRUE(inc.attach_tracker(&tracker));
  expect_equal(want, inc.run(g, p, parity_verifier()), "adopting sweep");
  EXPECT_EQ(inc.stats().store_adoptions, 1u);
  EXPECT_EQ(inc.stats().full_sweeps, 1u);

  // Incremental mutations then patch COW copies; the store's snapshot (and
  // engines still reading it) keep the pristine state.
  MutationBatch batch;
  batch.set_proof_label(0, p.labels[5]);
  batch.remove_edge(g.edge_u(0), g.edge_v(0));
  tracker.apply(batch);
  expect_equal(fresh.run(g, p, parity_verifier()),
               inc.run(g, p, parity_verifier()), "after mutation");
  inc.attach_tracker(nullptr);
}

TEST(BallStore, InterleavedEnginesNeverSeeStaleOrInFlightState) {
  // The staleness regression: two engines interleave on one store while
  // the graph mutates under a tracker with lazy fingerprint upkeep, then
  // the mutation is reverted so the original fingerprint recurs.  At every
  // step each engine must match a stateless fresh sweep — stale balls must
  // not be served for a changed graph, pristine snapshots must survive the
  // other engine's in-flight patches, and the reverted graph may (and
  // should) be served the original snapshot.
  Graph g = gen::random_connected(26, 0.12, 31);
  Proof p = sized_proof(26, 1);
  const Graph g0 = g;   // pristine copies
  const Proof p0 = p;
  const std::uint64_t fp0 = graph_fingerprint(g0);

  auto store = std::make_shared<BallStore>();
  DirectEngine fresh({/*cache_views=*/false});

  DeltaTracker tracker(g, p, 1);
  IncrementalEngine inc({.store = store});
  ASSERT_TRUE(inc.attach_tracker(&tracker));
  const RunResult want0 = fresh.run(g0, p0, parity_verifier());
  expect_equal(want0, inc.run(g, p, parity_verifier()), "initial");
  EXPECT_TRUE(store->contains(fp0, 1));

  // Structural mutation through the tracker: the engine patches in place
  // (its graph fingerprint goes lazily stale) and publishes nothing.
  // Removing the LAST edge keeps the edge-list order restorable, so the
  // later revert reproduces fp0 exactly (graph_fingerprint hashes edges in
  // index order and remove_edge swap-removes).
  const int last = g.m() - 1;
  const int u = g.edge_u(last);
  const int v = g.edge_v(last);
  const std::uint64_t cut_label = g.edge_label(last);
  const std::int64_t cut_weight = g.edge_weight(last);
  MutationBatch cut;
  cut.remove_edge(u, v);
  tracker.apply(cut);
  expect_equal(fresh.run(g, p, parity_verifier()),
               inc.run(g, p, parity_verifier()), "mutated");

  // A second engine on the same store, running the PRISTINE graph, must be
  // served the pristine snapshot (store hit) and produce pristine results
  // — the incremental engine's patches were COW-isolated.
  DirectEngine other({.store = store});
  const auto hits_before = store->stats().hits;
  expect_equal(want0, other.run(g0, p0, parity_verifier()),
               "pristine adopter during divergence");
  EXPECT_GT(store->stats().hits, hits_before);

  // A third engine on the MUTATED graph must miss (different fingerprint)
  // and extract fresh — never adopt fp0's balls.
  DirectEngine third({.store = store});
  expect_equal(fresh.run(g, p, parity_verifier()),
               third.run(g, p, parity_verifier()), "mutated adopter");

  // Revert: the fingerprint returns to fp0, and serving the original
  // snapshot is again correct.
  MutationBatch mend;
  mend.add_edge(u, v, cut_label, cut_weight);
  tracker.apply(mend);
  ASSERT_EQ(graph_fingerprint(g), fp0);
  expect_equal(want0, inc.run(g, p, parity_verifier()), "reverted");
  DirectEngine fourth({.store = store});
  expect_equal(fresh.run(g, p, parity_verifier()),
               fourth.run(g, p, parity_verifier()), "reverted adopter");
  inc.attach_tracker(nullptr);
}

}  // namespace
}  // namespace lcp