// Section 7.1 (port-numbering model M2 and the translations) and
// Section 3.2 (the strictly weaker Korman et al. PLS model).
#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "local/pls_model.hpp"
#include "local/port_model.hpp"
#include "schemes/agreement.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

TEST(Anonymize, RanksReplaceIdsButPortsSurvive) {
  const Graph g = gen::shuffle_ids(gen::cycle(7), 5);
  const View view = extract_view(g, Proof::empty(7), 3, 2);
  const View anon = anonymize_view(view);
  ASSERT_EQ(anon.ball.n(), view.ball.n());
  // Ids are 1..k.
  NodeId max_id = 0;
  for (int v = 0; v < anon.ball.n(); ++v) {
    max_id = std::max(max_id, anon.ball.id(v));
  }
  EXPECT_EQ(max_id, static_cast<NodeId>(anon.ball.n()));
  // Port structure identical: same neighbour at every port.
  for (int v = 0; v < view.ball.n(); ++v) {
    ASSERT_EQ(anon.ball.degree(v), view.ball.degree(v));
    for (int p = 0; p < view.ball.degree(v); ++p) {
      EXPECT_EQ(anon.ball.neighbor_at_port(v, p),
                view.ball.neighbor_at_port(v, p));
    }
  }
}

TEST(DfsIntervals, ProperNesting) {
  const Graph g = gen::random_tree(9, 3);
  const DfsIntervals dfs = dfs_intervals(g, 0);
  // Times are a permutation of 1..2n.
  std::vector<bool> used(static_cast<std::size_t>(2 * g.n() + 1), false);
  for (int v = 0; v < g.n(); ++v) {
    const auto x = dfs.discovery[static_cast<std::size_t>(v)];
    const auto y = dfs.finish[static_cast<std::size_t>(v)];
    EXPECT_LT(x, y);
    EXPECT_FALSE(used[static_cast<std::size_t>(x)]);
    EXPECT_FALSE(used[static_cast<std::size_t>(y)]);
    used[static_cast<std::size_t>(x)] = used[static_cast<std::size_t>(y)] =
        true;
  }
  // Child intervals nest strictly inside the parent's.
  for (int v = 0; v < g.n(); ++v) {
    if (v == dfs.tree.root) continue;
    const int p = dfs.tree.parent[static_cast<std::size_t>(v)];
    EXPECT_GT(dfs.discovery[static_cast<std::size_t>(v)],
              dfs.discovery[static_cast<std::size_t>(p)]);
    EXPECT_LT(dfs.finish[static_cast<std::size_t>(v)],
              dfs.finish[static_cast<std::size_t>(p)]);
  }
}

Graph with_leader(Graph g, int leader) {
  g.set_label(leader, kLeaderLabel);
  return g;
}

TEST(M1ToM2, TranslatedParityCompleteOnLeaderGraphs) {
  const M1ToM2Scheme scheme(std::make_shared<schemes::ParityScheme>(true));
  for (auto [n, leader] : {std::pair{7, 0}, {9, 4}, {11, 10}}) {
    const Graph g = with_leader(gen::cycle(n), leader);
    EXPECT_TRUE(scheme.holds(g));
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << n;
  }
  for (std::uint32_t seed = 0; seed < 5; ++seed) {
    Graph g = gen::random_connected(9, 0.3, seed);
    g = with_leader(std::move(g), static_cast<int>(seed) % g.n());
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << seed;
  }
}

TEST(M1ToM2, VerifierIsIdBlind) {
  // Shuffling identifiers must not change any verdict: the M2 verifier
  // reads only ports (ids are rank-compressed away).
  const M1ToM2Scheme scheme(std::make_shared<schemes::ParityScheme>(true));
  const Graph g = with_leader(gen::random_connected(9, 0.25, 7), 2);
  const auto proof = scheme.prove(g);
  ASSERT_TRUE(proof.has_value());
  // Relabel with order-preserving (rank-equal) ids: exact same ports.
  std::vector<NodeId> ids = g.ids();
  for (NodeId& id : ids) id = id * 17 + 3;
  const Graph h = gen::with_ids(g, ids);
  EXPECT_TRUE(default_engine().run(h, *proof, scheme.verifier()).all_accept);
}

TEST(M1ToM2, WrongParityRejected) {
  const M1ToM2Scheme scheme(std::make_shared<schemes::ParityScheme>(true));
  const Graph even = with_leader(gen::cycle(8), 0);
  EXPECT_FALSE(scheme.holds(even));
  const auto honest = scheme.prove(with_leader(gen::cycle(9), 0));
  ASSERT_TRUE(honest.has_value());
  Proof cut = Proof::empty(8);
  for (int v = 0; v < 8; ++v) {
    cut.labels[static_cast<std::size_t>(v)] =
        honest->labels[static_cast<std::size_t>(v)];
  }
  EXPECT_TRUE(rejected(even, cut, scheme.verifier()));
}

TEST(M1ToM2, ForgedDfsIntervalsRejected) {
  const M1ToM2Scheme scheme(std::make_shared<schemes::ParityScheme>(true));
  const Graph g = with_leader(gen::cycle(7), 0);
  const auto honest = scheme.prove(g);
  ASSERT_TRUE(honest.has_value());
  for (const Proof& p : tampered_variants(*honest, 80, 31)) {
    // Tampering certificates or intervals must never convert a yes into a
    // different accepted structure that changes the verdict — here the
    // instance stays a yes-instance, so acceptance is allowed only if the
    // proof is still internally consistent; we only demand no crash and
    // determinism.  The decisive soundness check is WrongParityRejected.
    (void)default_engine().run(g, p, scheme.verifier());
  }
  SUCCEED();
}

TEST(M1ToM2, OverheadIsLogarithmic) {
  const auto inner = std::make_shared<schemes::ParityScheme>(true);
  const M1ToM2Scheme scheme(inner);
  const Graph small = with_leader(gen::cycle(9), 0);
  const Graph large = with_leader(gen::cycle(129), 0);
  const int inner_small = inner->prove(small)->size_bits();
  const int outer_small = scheme.prove(small)->size_bits();
  const int outer_large = scheme.prove(large)->size_bits();
  EXPECT_GT(outer_small, inner_small);        // pays the translation
  EXPECT_LT(outer_large, 2 * outer_small);    // but stays O(log n)
}

TEST(Pls, AgreementNeedsOneBitInWeakModel) {
  const schemes::PlsAgreementScheme pls;
  Graph same = gen::cycle(6);
  for (int v = 0; v < 6; ++v) same.set_label(v, 1);
  EXPECT_TRUE(pls.holds(same));
  EXPECT_TRUE(run_pls_verifier(same, pls.prove(same), pls).all_accept);

  Graph mixed = gen::cycle(6);
  mixed.set_label(2, 1);
  EXPECT_FALSE(pls.holds(mixed));
  // Soundness: *any* 1-bit proof fails — enumerate all 2^6.
  for (int mask = 0; mask < (1 << 6); ++mask) {
    Proof p = Proof::empty(6);
    for (int v = 0; v < 6; ++v) {
      p.labels[static_cast<std::size_t>(v)].append_bit((mask >> v) & 1);
    }
    EXPECT_FALSE(run_pls_verifier(mixed, p, pls).all_accept) << mask;
  }
}

TEST(Pls, ZeroBitsAreProvablyInsufficient) {
  // The Section 3.2 separation, executed: a PLS view with an empty proof
  // contains only (id, own label, neighbour proofs).  Node 0 of the
  // all-zero instance and node 0 of the mixed instance have *identical*
  // views, so any 0-bit verifier accepting all yes-instances accepts the
  // mixed no-instance at node 0; by symmetry the same holds at every node
  // of the mixed cycle — the verifier cannot be sound.
  Graph all0 = gen::cycle(4);
  Graph all1 = gen::cycle(4);
  for (int v = 0; v < 4; ++v) all1.set_label(v, 1);
  Graph mixed = gen::cycle(4);
  mixed.set_label(1, 1);
  mixed.set_label(2, 1);

  const Proof empty = Proof::empty(4);
  for (int v = 0; v < 4; ++v) {
    const PlsView view = make_pls_view(mixed, empty, v);
    const Graph& pure = mixed.label(v) == 0 ? all0 : all1;
    const PlsView twin = make_pls_view(pure, empty, v);
    EXPECT_EQ(view.label, twin.label);
    EXPECT_EQ(view.proof, twin.proof);
    EXPECT_EQ(view.neighbor_proofs.size(), twin.neighbor_proofs.size());
    // ids coincide as well (same generator), completing the equivalence.
    EXPECT_EQ(view.id, twin.id);
  }
  // The LCP model, by contrast, solves agreement with zero bits.
  const schemes::AgreementScheme lcp_agreement;
  EXPECT_TRUE(scheme_accepts_own_proof(lcp_agreement, all0));
  EXPECT_TRUE(scheme_accepts_own_proof(lcp_agreement, all1));
  EXPECT_TRUE(rejected(mixed, empty, lcp_agreement.verifier()));
}

}  // namespace
}  // namespace lcp
