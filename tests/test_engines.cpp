// Engine equivalence corpus: Direct (cached and uncached), MessagePassing,
// Parallel, and Incremental engines must return bit-identical RunResults —
// verdict AND rejecting-node sets — on random graphs, several schemes,
// honest proofs, and adversarial (tampered/empty) proofs.  The corpus
// mutates graphs and proofs arbitrarily between runs, so it exercises the
// IncrementalEngine's content path (full rebuilds, proof auto-diff, and
// unchanged-state reuse) without any tracker cooperation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hpp"
#include "core/delta.hpp"
#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "local/message_passing.hpp"
#include "schemes/cycle_certified.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

struct Case {
  std::string label;
  Graph graph;
  Proof proof;
};

/// Honest, tampered, and empty proofs for one scheme on one graph.
std::vector<Case> cases_for(const Scheme& scheme, Graph g,
                            const std::string& label) {
  std::vector<Case> out;
  const auto honest = scheme.prove(g);
  if (honest.has_value()) {
    out.push_back({label + "/honest", g, *honest});
    for (const Proof& tampered : tampered_variants(*honest, 6, 11)) {
      out.push_back({label + "/tampered", g, tampered});
    }
  }
  out.push_back({label + "/empty", g, Proof::empty(g.n())});
  return out;
}

std::vector<Case> corpus(const Scheme& scheme) {
  std::vector<Case> all;
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("cycle9", gen::cycle(9));
  graphs.emplace_back("grid3x4", gen::grid(3, 4));
  graphs.emplace_back("petersen", gen::petersen());
  graphs.emplace_back("tree12", gen::random_tree(12, 3));
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    graphs.emplace_back("conn14-" + std::to_string(seed),
                        gen::random_connected(14, 0.25, seed));
    // Possibly disconnected: engines must agree off the happy path too.
    graphs.emplace_back("er10-" + std::to_string(seed),
                        gen::random_graph(10, 0.3, seed));
  }
  for (auto& [label, g] : graphs) {
    if (scheme.name() == "leader-election" && g.n() > 0) {
      g.set_label(g.n() / 2, schemes::kLeaderFlag);
    }
    auto cases = cases_for(scheme, g, scheme.name() + "/" + label);
    all.insert(all.end(), std::make_move_iterator(cases.begin()),
               std::make_move_iterator(cases.end()));
  }
  return all;
}

void expect_equal(const RunResult& expected, const RunResult& actual,
                  const std::string& engine, const std::string& label) {
  EXPECT_EQ(expected.all_accept, actual.all_accept)
      << engine << " on " << label;
  EXPECT_EQ(expected.rejecting, actual.rejecting)
      << engine << " on " << label;
}

void run_corpus(const Scheme& scheme) {
  DirectEngine cached;                                  // reused across cases
  DirectEngine uncached({/*cache_views=*/false});
  MessagePassingEngine flooding;
  ParallelEngine parallel1(1);
  ParallelEngine parallel4(4);
  ParallelEngine spawning(4, /*persistent_pool=*/false);
  IncrementalEngine incremental;
  for (const Case& c : corpus(scheme)) {
    const RunResult expected =
        uncached.run(c.graph, c.proof, scheme.verifier());
    expect_equal(expected, cached.run(c.graph, c.proof, scheme.verifier()),
                 "direct-cached", c.label);
    // Second cached run exercises the cache-hit path.
    expect_equal(expected, cached.run(c.graph, c.proof, scheme.verifier()),
                 "direct-cache-hit", c.label);
    expect_equal(expected, flooding.run(c.graph, c.proof, scheme.verifier()),
                 "message-passing", c.label);
    expect_equal(expected, parallel1.run(c.graph, c.proof, scheme.verifier()),
                 "parallel-1", c.label);
    expect_equal(expected, parallel4.run(c.graph, c.proof, scheme.verifier()),
                 "parallel-4", c.label);
    expect_equal(expected, spawning.run(c.graph, c.proof, scheme.verifier()),
                 "parallel-spawn", c.label);
    expect_equal(expected,
                 incremental.run(c.graph, c.proof, scheme.verifier()),
                 "incremental", c.label);
    // Second run hits the unchanged-state path (cached verdicts).
    expect_equal(expected,
                 incremental.run(c.graph, c.proof, scheme.verifier()),
                 "incremental-unchanged", c.label);
  }
}

TEST(EngineEquivalence, Bipartite) { run_corpus(schemes::BipartiteScheme()); }

TEST(EngineEquivalence, NonBipartite) {
  run_corpus(schemes::NonBipartiteScheme());
}

TEST(EngineEquivalence, LeaderElection) {
  run_corpus(schemes::LeaderElectionScheme());
}

TEST(EngineEquivalence, Parity) {
  run_corpus(schemes::ParityScheme(/*odd=*/true));
}

TEST(EngineEquivalence, AcyclicRadiusTwo) {
  run_corpus(schemes::AcyclicScheme());
}

TEST(DirectEngineCache, InvalidatesOnGraphMutation) {
  // Same object, mutated between runs: the fingerprint must catch node
  // labels, edge labels, and structure.
  const schemes::LeaderElectionScheme scheme;
  Graph g = gen::random_connected(12, 0.25, 21);
  g.set_label(4, schemes::kLeaderFlag);
  const Proof p = *scheme.prove(g);

  DirectEngine cached;
  DirectEngine fresh({/*cache_views=*/false});
  ASSERT_TRUE(cached.run(g, p, scheme.verifier()).all_accept);

  g.set_label(7, schemes::kLeaderFlag);  // second leader: proof now invalid
  const RunResult expected = fresh.run(g, p, scheme.verifier());
  const RunResult actual = cached.run(g, p, scheme.verifier());
  EXPECT_FALSE(actual.all_accept);
  EXPECT_EQ(expected.rejecting, actual.rejecting);

  Graph h = gen::cycle(12);
  h.set_label(0, schemes::kLeaderFlag);
  const Proof ph = *scheme.prove(h);
  expect_equal(fresh.run(h, ph, scheme.verifier()),
               cached.run(h, ph, scheme.verifier()), "direct-cached",
               "switch-to-new-graph");
}

TEST(DirectEngineCache, AlternatingGraphsDontThrash) {
  // The gluing attack alternates between two instances; both must stay
  // resident so neither run pays re-extraction.
  const schemes::BipartiteScheme scheme;
  Graph g1 = gen::cycle(12);
  Graph g2 = gen::grid(3, 4);
  const Proof p1 = *scheme.prove(g1);
  const Proof p2 = *scheme.prove(g2);
  DirectEngine cached;
  DirectEngine fresh({/*cache_views=*/false});
  for (int round = 0; round < 3; ++round) {
    expect_equal(fresh.run(g1, p1, scheme.verifier()),
                 cached.run(g1, p1, scheme.verifier()), "direct-lru",
                 "g1-round-" + std::to_string(round));
    expect_equal(fresh.run(g2, p2, scheme.verifier()),
                 cached.run(g2, p2, scheme.verifier()), "direct-lru",
                 "g2-round-" + std::to_string(round));
  }
  EXPECT_EQ(cached.cached_graph_count(), 2u);

  // A third and fourth graph evict nothing yet (capacity 4); a fifth
  // evicts the least recently used.
  for (int extra = 0; extra < 3; ++extra) {
    Graph g = gen::cycle(14 + 2 * extra);
    const Proof p = *scheme.prove(g);
    (void)cached.run(g, p, scheme.verifier());
  }
  EXPECT_EQ(cached.cached_graph_count(), 4u);
}

TEST(DirectEngineCache, CapFallsBackToUncached) {
  // A complete graph at radius 1 has n-node balls; with a tiny cap the
  // engine must abandon the cache and still be correct.
  const schemes::BipartiteScheme scheme;
  const Graph g = gen::complete_bipartite(6, 6);
  const Proof p = *scheme.prove(g);
  DirectEngine tiny({/*cache_views=*/true, /*max_cached_ball_nodes=*/8});
  DirectEngine fresh({/*cache_views=*/false});
  for (int round = 0; round < 2; ++round) {
    expect_equal(fresh.run(g, p, scheme.verifier()),
                 tiny.run(g, p, scheme.verifier()), "direct-tiny-cache",
                 "cap-round-" + std::to_string(round));
  }
}

TEST(DirectEngineCache, MigratesAcrossFingerprintsWithTracker) {
  // With a tracker attached, a graph mutation must not drop the warm
  // cache: the dirty log is replayed over the cached views and the entry
  // is rekeyed to the new fingerprint.
  const schemes::LeaderElectionScheme scheme;
  Graph g = gen::random_connected(30, 0.12, 29);
  g.set_label(4, schemes::kLeaderFlag);
  Proof p = *scheme.prove(g);
  DeltaTracker tracker(g, p, scheme.verifier().radius());

  DirectEngine cached;
  DirectEngine fresh({/*cache_views=*/false});
  ASSERT_TRUE(cached.attach_tracker(&tracker));
  expect_equal(fresh.run(g, p, scheme.verifier()),
               cached.run(g, p, scheme.verifier()), "direct-migrate",
               "warm-up");
  EXPECT_EQ(cached.stats().migrations, 0u);

  // Structural + label churn: every round must migrate, not rebuild.
  std::uint64_t expected_migrations = 0;
  for (int round = 0; round < 4; ++round) {
    MutationBatch batch;
    const int e = g.m() - 1 - round;
    batch.remove_edge(g.edge_u(e), g.edge_v(e));
    batch.set_node_label(round, 7);
    batch.set_proof_label(round, p.labels[static_cast<std::size_t>(
                                     (round + 5) % g.n())]);
    tracker.apply(batch);
    expect_equal(fresh.run(g, p, scheme.verifier()),
                 cached.run(g, p, scheme.verifier()), "direct-migrate",
                 "round-" + std::to_string(round));
    ++expected_migrations;
    EXPECT_EQ(cached.stats().migrations, expected_migrations);
    EXPECT_EQ(cached.cached_graph_count(), 1u);
  }
  // Some views survive each small mutation in place.
  EXPECT_GT(cached.stats().migrated_views, 0u);

  // Node growth migrates too: appended nodes are extracted fresh, the
  // rest replay.
  MutationBatch grow;
  grow.add_node(777);
  grow.add_edge(g.n(), 3);
  tracker.apply(grow);
  expect_equal(fresh.run(g, p, scheme.verifier()),
               cached.run(g, p, scheme.verifier()), "direct-migrate",
               "growth");
  EXPECT_EQ(cached.stats().migrations, expected_migrations + 1);
  EXPECT_GT(cached.stats().migration_reextractions, 0u);

  // A proof-only batch is a plain cache hit (the graph fingerprint is
  // unchanged), and the lineage keeps rolling forward for later batches.
  MutationBatch proof_only;
  proof_only.set_proof_label(2, p.labels[9]);
  tracker.apply(proof_only);
  expect_equal(fresh.run(g, p, scheme.verifier()),
               cached.run(g, p, scheme.verifier()), "direct-migrate",
               "proof-only");
  EXPECT_EQ(cached.stats().migrations, expected_migrations + 1);
  MutationBatch after;
  after.remove_edge(g.edge_u(0), g.edge_v(0));
  tracker.apply(after);
  expect_equal(fresh.run(g, p, scheme.verifier()),
               cached.run(g, p, scheme.verifier()), "direct-migrate",
               "after-proof-only");
  EXPECT_EQ(cached.stats().migrations, expected_migrations + 2);

  cached.attach_tracker(nullptr);
}

TEST(DirectEngineCache, MigrationRefusesOutOfBandMutation) {
  // A mutation bypassing the tracker must fall back to a full rebuild —
  // and still be correct — because the dirty log no longer accounts for
  // the divergence.
  const schemes::BipartiteScheme scheme;
  Graph g = gen::grid(4, 5);
  Proof p = *scheme.prove(g);
  DeltaTracker tracker(g, p, scheme.verifier().radius());
  DirectEngine cached;
  DirectEngine fresh({/*cache_views=*/false});
  ASSERT_TRUE(cached.attach_tracker(&tracker));
  (void)cached.run(g, p, scheme.verifier());

  g.set_label(0, 42);  // out of band: tracker fingerprint now stale
  expect_equal(fresh.run(g, p, scheme.verifier()),
               cached.run(g, p, scheme.verifier()), "direct-migrate",
               "out-of-band");
  EXPECT_EQ(cached.stats().migrations, 0u);
  cached.attach_tracker(nullptr);
}

TEST(EngineFactory, KnowsEveryBackend) {
  const schemes::BipartiteScheme scheme;
  const Graph g = gen::cycle(8);
  const Proof p = *scheme.prove(g);
  for (const char* name :
       {"direct", "message-passing", "parallel", "incremental", "sharded"}) {
    const std::unique_ptr<ExecutionEngine> engine = make_engine(name);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), name);
    EXPECT_TRUE(engine->run(g, p, scheme.verifier()).all_accept) << name;
  }
  EXPECT_THROW(make_engine("quantum"), std::invalid_argument);
}

TEST(Engines, ExhaustiveSearchMatchesAcrossEngines) {
  // exists_accepted_proof through each engine: the nondeterministic
  // acceptance predicate itself is backend-independent.
  const LambdaVerifier two_col(1, [](const View& v) {
    const BitString& mine = v.proof_of(v.center);
    if (mine.size() != 1) return false;
    for (const HalfEdge& h : v.ball.neighbors(v.center)) {
      const BitString& other = v.proof_of(h.to);
      if (other.size() != 1 || other.bit(0) == mine.bit(0)) return false;
    }
    return true;
  });
  for (const char* name :
       {"direct", "message-passing", "parallel", "incremental",
        "sharded:2"}) {
    const std::unique_ptr<ExecutionEngine> engine = make_engine(name);
    EXPECT_TRUE(exists_accepted_proof(gen::cycle(4), two_col, 1, *engine))
        << name;
    EXPECT_FALSE(exists_accepted_proof(gen::cycle(5), two_col, 1, *engine))
        << name;
  }
}

}  // namespace
}  // namespace lcp
