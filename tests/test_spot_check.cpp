// SpotCheckEngine: the statistical harness for the randomized tier.
//
// The load-bearing claims, each pinned here:
//
//   * Detection probability.  On a pool of uniformly weighted dirty balls,
//     a planted single-ball tamper is detected per batch with probability
//     exactly k/|pool| (sampling without replacement, uniform weights).
//     Measured over hundreds of seeded trials per budget, the detection
//     frequency must sit within a Hoeffding-style tolerance of that
//     probability — and the probability itself is >= the configured
//     budget, the advertised floor.
//   * Escalation.  A sampled rejection NEVER reaches the caller as-is:
//     the reported rejection always comes from the inner exact engine's
//     full dirty sweep, so REJECT verdicts are exact by construction.
//   * Bounded latency.  Sampled balls leave the pool, so with no new dirt
//     the pool drains and a tamper is found within ~|pool|/k runs.
//   * budget == 0 degenerates to the inner engine bit-identically: every
//     RunResult field equal on every step of a shared mutation schedule.
//   * Error accounting.  miss_bound decays per survived run by the
//     provable per-entry exclusion bound — exactly (1 - k/|pool|) on a
//     uniform pool, (1 - w/W)^k on a boosted one — remains an upper
//     bound on the measured never-sampled frequency when importance
//     boosts skew the pool, and drops to 0 whenever an exact run
//     settles the pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/delta.hpp"
#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "core/session.hpp"
#include "core/spot_check.hpp"
#include "graph/generators.hpp"
#include "obs/journal.hpp"
#include "schemes/lcp_const.hpp"

namespace lcp {
namespace {

/// n isolated nodes: every radius-1 ball is a single node, so the pool's
/// entries are independent and detection probability is exactly k/|pool|.
Graph isolated_nodes(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) g.add_node(static_cast<NodeId>(i + 1));
  return g;
}

/// Accepts iff the centre's proof starts with a 1-bit ("1", "11", ... all
/// accept; "0" and the empty string reject).  Length changes let innocent
/// churn dirty a ball without changing its verdict.
std::unique_ptr<LocalVerifier> first_bit_verifier() {
  return std::make_unique<LambdaVerifier>(1, [](const View& v) {
    const BitString& bits = v.proof_of(v.center);
    return bits.size() >= 1 && bits.bit(0);
  });
}

Proof all_ones(int n) {
  Proof p = Proof::empty(n);
  for (BitString& b : p.labels) b = BitString::from_string("1");
  return p;
}

// ---------------------------------------------------------------------------
// Detection probability, measured.
// ---------------------------------------------------------------------------

struct TrialOutcome {
  bool detected = false;
};

/// One seeded trial: dirty `pool` balls (one tampered), run once, report
/// whether the tamper was caught.  Fresh engine per trial so trials are
/// independent draws of the sampling stream.
TrialOutcome run_trial(int pool, double budget, std::uint64_t seed,
                       int tamper) {
  const int n = pool + 8;  // a few never-dirtied bystanders
  Graph g = isolated_nodes(n);
  Proof p = all_ones(n);
  auto verifier = first_bit_verifier();
  DeltaTracker tracker(g, p, 1);
  SpotCheckEngine engine(std::make_unique<DirectEngine>(),
                         {.budget = budget, .seed = seed});
  engine.attach_tracker(&tracker);

  // Cold exact run establishes the accepting baseline.
  RunResult warm = engine.run(g, p, *verifier);
  EXPECT_TRUE(warm.all_accept);

  MutationBatch batch;
  for (int v = 0; v < pool; ++v) {
    batch.set_proof_label(
        v, BitString::from_string(v == tamper ? "0" : "11"));
  }
  tracker.apply(batch);

  const RunResult r = engine.run(g, p, *verifier);
  TrialOutcome out;
  out.detected = !r.all_accept;
  if (out.detected) {
    // The rejection must be the escalated exact verdict, never the raw
    // sample: exactly the tampered centre, via exactly one escalation.
    EXPECT_EQ(r.rejecting, std::vector<int>{tamper});
    EXPECT_EQ(engine.stats().escalations, 1u);
    EXPECT_EQ(engine.stats().miss_bound, 0.0);
    EXPECT_EQ(engine.stats().pool_size, 0u);
  } else {
    EXPECT_EQ(engine.stats().escalations, 0u);
  }
  engine.attach_tracker(nullptr);
  return out;
}

TEST(SpotCheckStatistics, DetectionProbabilityMeetsBudget) {
  constexpr int kPool = 32;
  constexpr int kTrials = 600;  // per budget; >= the issue's 200 floor
  // Hoeffding: P(|freq - p| > eps) <= 2 exp(-2 N eps^2) = delta.
  constexpr double kDelta = 1e-6;
  const double eps =
      std::sqrt(std::log(2.0 / kDelta) / (2.0 * kTrials));

  const double budgets[] = {0.125, 0.25, 0.5};
  std::uint64_t seed = 1;
  for (const double budget : budgets) {
    const int k = static_cast<int>(std::ceil(budget * kPool));
    const double expect_p = static_cast<double>(k) / kPool;
    std::mt19937 tamper_rng(static_cast<std::uint32_t>(budget * 1000));
    int detections = 0;
    for (int t = 0; t < kTrials; ++t) {
      const int tamper =
          std::uniform_int_distribution<int>(0, kPool - 1)(tamper_rng);
      if (run_trial(kPool, budget, seed++, tamper).detected) ++detections;
    }
    const double freq = static_cast<double>(detections) / kTrials;
    EXPECT_NEAR(freq, expect_p, eps)
        << "budget " << budget << ": " << detections << "/" << kTrials;
    // The advertised floor: per-batch detection probability >= budget.
    EXPECT_GE(freq + eps, budget) << "budget " << budget;
  }
}

TEST(SpotCheckStatistics, TamperDetectedWithinPoolDrain) {
  // Sampling without replacement drains the pool, so with no new dirt a
  // planted tamper must surface within |pool| runs — and in expectation
  // within ~1/budget of them.  Every seed must detect eventually.
  constexpr int kPool = 32;
  constexpr double kBudget = 0.125;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const int n = kPool + 4;
    Graph g = isolated_nodes(n);
    Proof p = all_ones(n);
    auto verifier = first_bit_verifier();
    DeltaTracker tracker(g, p, 1);
    SpotCheckEngine engine(std::make_unique<DirectEngine>(),
                           {.budget = kBudget, .seed = seed});
    engine.attach_tracker(&tracker);
    EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);

    const int tamper = static_cast<int>(seed % kPool);
    MutationBatch batch;
    for (int v = 0; v < kPool; ++v) {
      batch.set_proof_label(
          v, BitString::from_string(v == tamper ? "0" : "11"));
    }
    tracker.apply(batch);

    int runs = 0;
    bool detected = false;
    while (runs < kPool && !detected) {
      ++runs;
      const RunResult r = engine.run(g, p, *verifier);
      detected = !r.all_accept;
      if (detected) {
        EXPECT_EQ(r.rejecting, std::vector<int>{tamper}) << "seed " << seed;
      }
    }
    EXPECT_TRUE(detected) << "seed " << seed;
    EXPECT_GE(engine.stats().escalations, 1u) << "seed " << seed;
    engine.attach_tracker(nullptr);
  }
}

TEST(SpotCheckStatistics, MissBoundIsSoundUnderImportanceBoosts) {
  // Regression for the weighted-pool accounting.  With boosts active, a
  // weight-1 entry's inclusion probability falls BELOW k/|pool| (the
  // boosted entries absorb the budget), so the naive uniform decay
  // 1 - k/|pool| is NOT an upper bound on its never-sampled
  // probability.  Measure that probability for a watched weight-1
  // centre over seeded trials and pin it (a) under the engine's
  // recorded per-entry bound (1 - 1/W)^k and (b) ABOVE the uniform
  // factor by more than the statistical tolerance — i.e. the uniform
  // factor really would have under-reported the miss here.
  constexpr int kPool = 32;
  constexpr int kBoosted = 16;  // centres 0..15, boosted via note_repair
  constexpr double kRepairWeight = 16.0;
  constexpr double kBudget = 0.25;
  constexpr int kTrials = 600;
  constexpr int kWatch = kBoosted;  // first unboosted (weight-1) centre
  const int k = static_cast<int>(std::ceil(kBudget * kPool));
  const double total_weight =
      kBoosted * kRepairWeight + (kPool - kBoosted);
  const double weight1_bound =
      std::pow(1.0 - 1.0 / total_weight, static_cast<double>(k));
  const double uniform_factor = 1.0 - static_cast<double>(k) / kPool;

  int missed = 0;
  for (int t = 0; t < kTrials; ++t) {
    Graph g = isolated_nodes(kPool);
    Proof p = all_ones(kPool);
    auto verifier = first_bit_verifier();
    DeltaTracker tracker(g, p, 1);
    SpotCheckEngine engine(
        std::make_unique<DirectEngine>(),
        {.budget = kBudget,
         .seed = 0xabcd0000ULL + static_cast<std::uint64_t>(t),
         .repair_weight = kRepairWeight});
    engine.attach_tracker(&tracker);
    ASSERT_TRUE(engine.run(g, p, *verifier).all_accept);

    std::vector<int> boosted;
    for (int v = 0; v < kBoosted; ++v) boosted.push_back(v);
    engine.note_repair(boosted);
    MutationBatch batch;
    for (int v = 0; v < kPool; ++v) {
      batch.set_proof_label(v, BitString::from_string("11"));
    }
    tracker.apply(batch);
    ASSERT_TRUE(engine.run(g, p, *verifier).all_accept);

    const std::vector<int>& sample = engine.last_sample();
    if (!std::binary_search(sample.begin(), sample.end(), kWatch)) {
      ++missed;
      // The watched weight-1 entry survived, so the worst outstanding
      // bound is the weight-1 exclusion factor — recorded exactly.
      EXPECT_DOUBLE_EQ(engine.stats().miss_bound, weight1_bound);
    }
    engine.attach_tracker(nullptr);
  }

  const double freq = static_cast<double>(missed) / kTrials;
  constexpr double kDelta = 1e-4;
  const double eps = std::sqrt(std::log(2.0 / kDelta) / (2.0 * kTrials));
  EXPECT_LE(freq, weight1_bound + eps);
  EXPECT_GT(freq, uniform_factor + eps);
}

// ---------------------------------------------------------------------------
// budget == 0: bit-identical delegation.
// ---------------------------------------------------------------------------

TEST(SpotCheck, BudgetZeroIsBitIdenticalToInner) {
  // Twin incremental engines over twin state replicas, one bare and one
  // wrapped at budget 0, fed the identical mutation schedule: every
  // RunResult field must match on every step, and the wrapper must never
  // sample.
  const Graph start = gen::random_connected(24, 0.12, 77);
  auto verifier = std::make_unique<LambdaVerifier>(1, [](const View& v) {
    return v.proof_of(v.center).size() <= 2;  // random bits reject sometimes
  });

  Graph g_bare = start;
  Graph g_spot = start;
  Proof p_bare = Proof::empty(start.n());
  Proof p_spot = Proof::empty(start.n());
  DeltaTracker tr_bare(g_bare, p_bare, 1);
  DeltaTracker tr_spot(g_spot, p_spot, 1);
  IncrementalEngine bare;
  SpotCheckEngine spot(std::make_unique<IncrementalEngine>(),
                       {.budget = 0.0, .seed = 9});
  ASSERT_TRUE(bare.attach_tracker(&tr_bare));
  ASSERT_TRUE(spot.attach_tracker(&tr_spot));

  std::mt19937 rng(4242);
  int runs = 0;
  auto step = [&](const MutationBatch& batch) {
    if (!batch.empty()) {
      tr_bare.apply(batch);
      tr_spot.apply(batch);
    }
    ++runs;
    const RunResult want = bare.run(g_bare, p_bare, *verifier);
    const RunResult got = spot.run(g_spot, p_spot, *verifier);
    ASSERT_EQ(want.all_accept, got.all_accept);
    ASSERT_EQ(want.rejecting, got.rejecting);
    ASSERT_EQ(want.evaluated, got.evaluated);
    ASSERT_EQ(want.flips_known, got.flips_known);
    ASSERT_EQ(want.newly_rejecting, got.newly_rejecting);
    ASSERT_EQ(want.newly_accepting, got.newly_accepting);
  };

  step(MutationBatch{});
  for (int round = 0; round < 60; ++round) {
    MutationBatch batch;
    const int node =
        std::uniform_int_distribution<int>(0, start.n() - 1)(rng);
    switch (rng() % 3) {
      case 0: {
        BitString bits;
        const int len = static_cast<int>(rng() % 4);
        for (int i = 0; i < len; ++i) bits.append_bit(rng() % 2 != 0);
        batch.set_proof_label(node, bits);
        break;
      }
      case 1:
        batch.set_node_label(node, rng() % 4);
        break;
      default:
        batch.set_proof_label(node, BitString{});
        break;
    }
    step(batch);
  }

  EXPECT_EQ(spot.stats().sampled_runs, 0u);
  EXPECT_EQ(spot.stats().balls_sampled, 0u);
  EXPECT_EQ(spot.stats().exact_runs, static_cast<std::uint64_t>(runs));
  EXPECT_EQ(spot.stats().miss_bound, 0.0);
  bare.attach_tracker(nullptr);
  spot.attach_tracker(nullptr);
}

// ---------------------------------------------------------------------------
// Error accounting and audits.
// ---------------------------------------------------------------------------

TEST(SpotCheck, MissBoundDecaysGeometricallyAndSettlesToZero) {
  constexpr int kPool = 32;
  const int n = kPool;
  Graph g = isolated_nodes(n);
  Proof p = all_ones(n);
  auto verifier = first_bit_verifier();
  DeltaTracker tracker(g, p, 1);
  SpotCheckEngine engine(std::make_unique<DirectEngine>(),
                         {.budget = 0.5, .seed = 3});
  engine.attach_tracker(&tracker);
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);

  MutationBatch batch;
  for (int v = 0; v < kPool; ++v) {
    batch.set_proof_label(v, BitString::from_string("11"));
  }
  tracker.apply(batch);

  // Each run samples half the remaining pool: 32 -> 16 -> 8 -> ... and the
  // survivors' miss bound halves in lockstep.
  double expected_bound = 1.0;
  std::size_t expected_pool = kPool;
  while (expected_pool > 0) {
    EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
    expected_bound *= 0.5;
    expected_pool -= expected_pool / 2 + (expected_pool % 2);
    EXPECT_EQ(engine.stats().pool_size, expected_pool);
    if (expected_pool > 0) {
      EXPECT_DOUBLE_EQ(engine.stats().miss_bound, expected_bound);
    }
  }
  // Pool drained: the bound settles to zero and further runs are
  // unchanged-state no-ops.
  EXPECT_EQ(engine.stats().miss_bound, 0.0);
  EXPECT_EQ(engine.stats().balls_sampled,
            static_cast<std::uint64_t>(kPool));
  const std::uint64_t sampled_runs = engine.stats().sampled_runs;
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
  EXPECT_EQ(engine.stats().sampled_runs, sampled_runs);
  EXPECT_GE(engine.stats().unchanged_runs, 1u);
  engine.attach_tracker(nullptr);
}

TEST(SpotCheck, AuditEscalatesToExactAndSettlesThePool) {
  const int n = 24;
  Graph g = isolated_nodes(n);
  Proof p = all_ones(n);
  auto verifier = first_bit_verifier();
  DeltaTracker tracker(g, p, 1);
  auto journal = std::make_shared<obs::Journal>();
  SpotCheckEngine engine(std::make_unique<IncrementalEngine>(),
                         {.budget = 0.1, .seed = 17});
  engine.attach_tracker(&tracker);
  engine.attach_journal(journal.get());
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);

  MutationBatch batch;
  for (int v = 0; v < n; ++v) {
    batch.set_proof_label(v, BitString::from_string("11"));
  }
  tracker.apply(batch);
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);  // sampled
  EXPECT_GT(engine.stats().pool_size, 0u);
  EXPECT_GT(engine.stats().miss_bound, 0.0);

  engine.request_audit();
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
  EXPECT_EQ(engine.stats().audits, 1u);
  EXPECT_EQ(engine.stats().escalations, 1u);
  EXPECT_EQ(engine.stats().pool_size, 0u);
  EXPECT_EQ(engine.stats().miss_bound, 0.0);

  // The audit is one-shot: the next dirty run samples again.
  MutationBatch more;
  for (int v = 0; v < n; ++v) {
    more.set_proof_label(v, BitString::from_string("1"));
  }
  tracker.apply(more);
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
  EXPECT_EQ(engine.stats().audits, 1u);
  EXPECT_GT(engine.stats().pool_size, 0u);

  // The flight recorder saw both kinds.
  bool saw_sample = false;
  bool saw_escalate = false;
  for (const obs::JournalEvent& e : journal->events()) {
    if (e.kind == obs::JournalEventKind::kSpotSample) saw_sample = true;
    if (e.kind == obs::JournalEventKind::kSpotEscalate) saw_escalate = true;
  }
  EXPECT_TRUE(saw_sample);
  EXPECT_TRUE(saw_escalate);
  engine.attach_tracker(nullptr);
}

TEST(SpotCheck, AuditOnColdStartFallbackIsStillAccounted) {
  // request_audit() before any baseline exists lands on the cold-start
  // exact fallback, not the dedicated audit branch; the audit must still
  // be counted and journalled, not silently swallowed with the flag.
  const int n = 8;
  Graph g = isolated_nodes(n);
  Proof p = all_ones(n);
  auto verifier = first_bit_verifier();
  DeltaTracker tracker(g, p, 1);
  auto journal = std::make_shared<obs::Journal>();
  SpotCheckEngine engine(std::make_unique<DirectEngine>(),
                         {.budget = 0.5, .seed = 21});
  engine.attach_tracker(&tracker);
  engine.attach_journal(journal.get());

  engine.request_audit();
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
  EXPECT_EQ(engine.stats().audits, 1u);
  EXPECT_EQ(engine.stats().escalations, 1u);
  bool saw_escalate = false;
  for (const obs::JournalEvent& e : journal->events()) {
    if (e.kind == obs::JournalEventKind::kSpotEscalate) saw_escalate = true;
  }
  EXPECT_TRUE(saw_escalate);

  // One-shot: the flag is consumed, the next run is an ordinary one.
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
  EXPECT_EQ(engine.stats().audits, 1u);
  EXPECT_EQ(engine.stats().escalations, 1u);
  engine.attach_tracker(nullptr);
}

TEST(SpotCheck, RepairBoostReachesEntriesAlreadyInThePool) {
  // note_repair's contract covers centres *sitting in* the pool, not
  // only centres dirtied afterwards: boost the survivors of one sampled
  // run, add one fresh unboosted centre, and check the next run's miss
  // bounds follow the weighted per-entry factors, not the uniform one.
  const int n = 4;
  Graph g = isolated_nodes(n);
  Proof p = all_ones(n);
  auto verifier = first_bit_verifier();
  DeltaTracker tracker(g, p, 1);
  SpotCheckEngine engine(std::make_unique<DirectEngine>(),
                         {.budget = 1.0 / 3.0, .seed = 5});
  engine.attach_tracker(&tracker);
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);

  // Run 1: pool {0,1,2}, k = 1 — two uniform survivors with miss 2/3.
  MutationBatch batch;
  for (int v = 0; v < 3; ++v) {
    batch.set_proof_label(v, BitString::from_string("11"));
  }
  tracker.apply(batch);
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
  ASSERT_EQ(engine.stats().pool_size, 2u);
  const double first_factor = 1.0 - 1.0 / 3.0;
  EXPECT_DOUBLE_EQ(engine.stats().miss_bound, first_factor);
  std::vector<int> survivors;
  for (int v = 0; v < 3; ++v) {
    if (!std::binary_search(engine.last_sample().begin(),
                            engine.last_sample().end(), v)) {
      survivors.push_back(v);
    }
  }
  ASSERT_EQ(survivors.size(), 2u);

  // Run 2: boost the sitting survivors (default repair weight 1.5),
  // dirty fresh centre 3 (weight 1).  Pool {s1:1.5, s2:1.5, 3:1.0},
  // W = 4, k = 1.
  engine.note_repair(survivors);
  MutationBatch more;
  more.set_proof_label(3, BitString::from_string("11"));
  tracker.apply(more);
  EXPECT_TRUE(engine.run(g, p, *verifier).all_accept);
  ASSERT_EQ(engine.stats().pool_size, 2u);

  const double uniform_factor = 1.0 - 1.0 / 3.0;
  const double boosted_factor =
      std::min(std::pow(1.0 - 1.5 / 4.0, 1.0), uniform_factor);
  const double fresh_factor = std::pow(1.0 - 1.0 / 4.0, 1.0);
  const bool fresh_sampled = std::binary_search(
      engine.last_sample().begin(), engine.last_sample().end(), 3);
  const double expected =
      fresh_sampled ? first_factor * boosted_factor : fresh_factor;
  EXPECT_DOUBLE_EQ(engine.stats().miss_bound, expected);
  // Either way the bound differs from what an unboosted (uniform) pool
  // would have produced — the sitting survivors did get the boost.
  EXPECT_NE(engine.stats().miss_bound,
            fresh_sampled ? first_factor * uniform_factor : uniform_factor);
  engine.attach_tracker(nullptr);
}

// ---------------------------------------------------------------------------
// Spec grammar and factory registration.
// ---------------------------------------------------------------------------

TEST(SpotCheckSpecTest, ParsesBudgetAndInner) {
  const SpotCheckSpec d = parse_spotcheck_spec("spotcheck");
  EXPECT_DOUBLE_EQ(d.options.budget, 0.05);
  EXPECT_EQ(d.inner, "incremental");

  const SpotCheckSpec b = parse_spotcheck_spec("spotcheck:0.25");
  EXPECT_DOUBLE_EQ(b.options.budget, 0.25);
  EXPECT_EQ(b.inner, "incremental");

  const SpotCheckSpec i = parse_spotcheck_spec("spotcheck:0.01:direct");
  EXPECT_DOUBLE_EQ(i.options.budget, 0.01);
  EXPECT_EQ(i.inner, "direct");

  // The inner spec may itself carry colons.
  const SpotCheckSpec s =
      parse_spotcheck_spec("spotcheck:0.5:sharded:4:hash");
  EXPECT_DOUBLE_EQ(s.options.budget, 0.5);
  EXPECT_EQ(s.inner, "sharded:4:hash");

  EXPECT_THROW(parse_spotcheck_spec("spotcheck:"), std::invalid_argument);
  EXPECT_THROW(parse_spotcheck_spec("spotcheck:1.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_spotcheck_spec("spotcheck:-0.1"),
               std::invalid_argument);
  EXPECT_THROW(parse_spotcheck_spec("spotcheck:abc"),
               std::invalid_argument);
  EXPECT_THROW(parse_spotcheck_spec("spotcheck:0.1:"),
               std::invalid_argument);
  EXPECT_THROW(parse_spotcheck_spec("spotcheck:0.1:spotcheck"),
               std::invalid_argument);
  EXPECT_THROW(parse_spotcheck_spec("spotcheck:0.1:spotcheck:0.2"),
               std::invalid_argument);
  EXPECT_THROW(parse_spotcheck_spec("spotchec"), std::invalid_argument);
}

TEST(SpotCheckSpecTest, FactoryBuildsAndRejects) {
  auto engine = make_engine("spotcheck:0.1:direct");
  EXPECT_EQ(engine->name(), "spotcheck");
  auto& spot = static_cast<SpotCheckEngine&>(*engine);
  EXPECT_DOUBLE_EQ(spot.budget(), 0.1);
  EXPECT_EQ(spot.inner().name(), "direct");
  EXPECT_THROW(make_engine("spotcheck:0.1:warp-drive"),
               std::invalid_argument);
  EXPECT_THROW(
      SpotCheckEngine(nullptr, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Session integration.
// ---------------------------------------------------------------------------

TEST(SpotCheckSession, StatsSurfaceAndAuditIsExact) {
  const schemes::BipartiteScheme scheme;
  auto session = VerificationSession::on(gen::grid(4, 4))
                     .scheme(scheme)
                     .engine("spotcheck:0.5")
                     .build();
  ASSERT_NE(session.spot_check_engine(), nullptr);
  // The default inner is incremental and stays reachable for tuning.
  ASSERT_NE(session.incremental_engine(), nullptr);
  EXPECT_EQ(session.engine().name(), "spotcheck");
  EXPECT_TRUE(session.verify().all_accept);

  // Node-label churn dirties balls without threatening bipartiteness, so
  // every batch feeds the pool and the verdict stays accepting.
  std::mt19937 rng(8);
  for (int round = 0; round < 12; ++round) {
    MutationBatch batch;
    for (int i = 0; i < 4; ++i) {
      batch.set_node_label(
          std::uniform_int_distribution<int>(0, 15)(rng), rng() % 8);
    }
    EXPECT_TRUE(session.apply(batch).all_accept) << "round " << round;
  }
  EXPECT_GT(session.stats().spot_sampled, 0u);
  EXPECT_EQ(session.stats().spot_escalations, 0u);
  EXPECT_LE(session.stats().spot_miss_bound, 1.0);

  // Tamper the proof out of band of the scheme (no maintainer bound, the
  // session reproves; tamper again *after* the repair via a raw tracker
  // write would be out of contract, so instead audit the healthy state).
  session.spot_check_engine()->request_audit();
  EXPECT_TRUE(session.verify().all_accept);
  EXPECT_EQ(session.stats().spot_escalations, 1u);
  EXPECT_EQ(session.stats().spot_miss_bound, 0.0);
}

TEST(SpotCheckSession, BuilderAcceptsInnerSpecsAndOptions) {
  const schemes::BipartiteScheme scheme;
  auto session = VerificationSession::on(gen::grid(3, 3))
                     .scheme(scheme)
                     .engine("spotcheck:0.25:sharded:2")
                     .spotcheck_options({.budget = 1.0, .seed = 99})
                     .build();
  ASSERT_NE(session.spot_check_engine(), nullptr);
  EXPECT_EQ(session.incremental_engine(), nullptr);
  // spotcheck_options() overrides the parsed budget.
  EXPECT_DOUBLE_EQ(session.spot_check_engine()->budget(), 1.0);
  EXPECT_EQ(session.spot_check_engine()->inner().name(), "sharded");
  EXPECT_TRUE(session.verify().all_accept);

  MutationBatch batch;
  batch.set_node_label(0, 5);
  EXPECT_TRUE(session.apply(batch).all_accept);
  // Budget 1 verifies the whole pool: nothing is ever skipped.
  EXPECT_EQ(session.stats().spot_skipped, 0u);

  EXPECT_THROW(VerificationSession::on(gen::grid(2, 2))
                   .scheme(scheme)
                   .engine("spotcheck:2.0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcp
