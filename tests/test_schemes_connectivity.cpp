// The s-t connectivity = k schemes of Section 4.2: O(log k) general and
// O(1) planar (3 path colours).
#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/st_connectivity.hpp"

namespace lcp::schemes {
namespace {

Graph mark_st(Graph g, int s, int t) {
  g.set_label(s, kSourceLabel);
  g.set_label(t, kTargetLabel);
  return g;
}

class ConnectivityCases
    : public ::testing::TestWithParam<std::tuple<int, PathNaming>> {};

TEST_P(ConnectivityCases, CompletenessOnCraftedInstances) {
  const auto [k, naming] = GetParam();
  const StConnectivityScheme scheme(k, naming);
  Graph g = [k] {
    switch (k) {
      case 0:
        return gen::disjoint_union(gen::path(4), gen::path(4));
      case 1:
        return gen::path(6);
      case 2:
        return gen::cycle(10);
      default: {
        // k parallel length-2 paths between s and t.
        Graph h;
        const int s = h.add_node(1);
        const int t = h.add_node(2);
        for (int i = 0; i < 3; ++i) {
          const int mid = h.add_node(static_cast<NodeId>(10 + i));
          h.add_edge(s, mid);
          h.add_edge(mid, t);
        }
        return h;
      }
    }
  }();
  const int s = 0;
  const int t = k == 0 ? g.n() - 1 : (k == 1 ? 5 : (k == 2 ? 5 : 1));
  g = mark_st(std::move(g), s, t);
  EXPECT_TRUE(scheme.holds(g));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
  // The wrong k must be a no-instance with no valid honest proof.
  const StConnectivityScheme wrong(k + 1, naming);
  EXPECT_FALSE(wrong.holds(g));
  EXPECT_FALSE(wrong.prove(g).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConnectivityCases,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(PathNaming::kUniqueIndices,
                                         PathNaming::kThreeColors)));

TEST(Connectivity, GridPlanarVariantStaysConstantSize) {
  // Opposite corners of grids: connectivity 2; the planar proof size must
  // not grow with n.
  const StConnectivityScheme scheme(2, PathNaming::kThreeColors);
  int size4 = 0;
  int size8 = 0;
  for (int side : {4, 8}) {
    const Graph g = mark_st(gen::grid(side, side), 0, side * side - 1);
    ASSERT_TRUE(scheme.holds(g)) << side;
    const auto proof = scheme.prove(g);
    ASSERT_TRUE(proof.has_value()) << side;
    EXPECT_TRUE(default_engine().run(g, *proof, scheme.verifier()).all_accept);
    (side == 4 ? size4 : size8) = proof->size_bits();
  }
  EXPECT_EQ(size4, size8);
  EXPECT_LE(size8, 9);  // 3 + 2 + 4 bits
}

TEST(Connectivity, CompleteBipartiteHighK) {
  const StConnectivityScheme scheme(4, PathNaming::kUniqueIndices);
  const Graph g = mark_st(gen::complete_bipartite(4, 4), 0, 1);
  EXPECT_TRUE(scheme.holds(g));  // two left nodes: kappa = 4
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
}

TEST(Connectivity, CheatingSeparatorRejected) {
  // On a 10-cycle (kappa = 2), try to pass the k = 1 verifier by blanking
  // one of the honest k = 2 proof's paths: s and t then see one endpoint
  // each, but the S/T partition now has an uncut route.
  const StConnectivityScheme two(2, PathNaming::kUniqueIndices);
  const StConnectivityScheme one(1, PathNaming::kUniqueIndices);
  Graph g = mark_st(gen::cycle(10), 0, 5);
  const auto proof = two.prove(g);
  ASSERT_TRUE(proof.has_value());
  // All structured tampers of the honest 2-proof must fail the 1-verifier.
  for (const Proof& bad : tampered_variants(*proof, 100, 9)) {
    EXPECT_TRUE(rejected(g, bad, one.verifier()));
  }
  // And the honest 2-proof itself certainly fails it.
  EXPECT_TRUE(rejected(g, *proof, one.verifier()));
}

TEST(Connectivity, ExhaustiveSoundnessTinyInstances) {
  // Triangle path s-a-t with a single route: kappa = 1; the k = 2 verifier
  // must reject every proof of up to 7 bits per node.
  const StConnectivityScheme two(2, PathNaming::kUniqueIndices);
  const Graph g = mark_st(gen::path(3), 0, 2);
  EXPECT_FALSE(exists_accepted_proof(g, two.verifier(), 7));
}

TEST(Connectivity, ExhaustiveSoundnessWrongDirectionTiny) {
  // kappa = 2 (C4), k = 1 verifier must reject everything small.  With 4
  // nodes the exhaustive budget is 4 bits per node: enough for every
  // off-path side combination (3 bits) — the S/T-cut half of soundness —
  // while on-path labels (8 bits) cannot even be encoded.
  const StConnectivityScheme one(1, PathNaming::kUniqueIndices);
  const Graph g = mark_st(gen::cycle(4), 0, 2);
  EXPECT_FALSE(exists_accepted_proof(g, one.verifier(), 4));
}

TEST(Connectivity, AdvertisedSizeGrowsLogarithmically) {
  const StConnectivityScheme k2(2, PathNaming::kUniqueIndices);
  const StConnectivityScheme k16(16, PathNaming::kUniqueIndices);
  const StConnectivityScheme planar(7, PathNaming::kThreeColors);
  EXPECT_LT(k2.advertised_size(100), k16.advertised_size(100));
  EXPECT_EQ(planar.advertised_size(100), 9);
}

}  // namespace
}  // namespace lcp::schemes
