// Regression coverage for Graph::remove_edge's swap-remove repair: the
// cases where the moved last edge shares endpoints with the removed one,
// nodes losing their final edge, attempted parallel edges around the
// remove/re-add cycle, and remove-then-re-add inside one MutationBatch.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/delta.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

/// Every adjacency entry must point at an edge record naming that pair.
void expect_adjacency_consistent(const Graph& g) {
  for (int v = 0; v < g.n(); ++v) {
    for (const HalfEdge& h : g.neighbors(v)) {
      ASSERT_GE(h.edge, 0);
      ASSERT_LT(h.edge, g.m());
      const int a = g.edge_u(h.edge);
      const int b = g.edge_v(h.edge);
      EXPECT_TRUE((a == v && b == h.to) || (a == h.to && b == v))
          << "node " << v << " port to " << h.to;
    }
  }
  for (int e = 0; e < g.m(); ++e) {
    EXPECT_EQ(g.edge_index(g.edge_u(e), g.edge_v(e)), e);
  }
}

TEST(RemoveEdgeRegression, MovedEdgeSharesEndpointWithRemoved) {
  // Triangle: the last edge record {0,2} is swap-moved into the freed slot
  // and is incident to both endpoints of the removed edge.
  Graph g;
  for (int v = 0; v < 3; ++v) g.add_node(static_cast<NodeId>(v + 1));
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 8);
  g.add_edge(0, 2, 9);
  g.remove_edge(0, 1);
  EXPECT_EQ(g.m(), 2);
  expect_adjacency_consistent(g);
  EXPECT_EQ(g.edge_label(g.edge_index(0, 2)), 9u);
  EXPECT_EQ(g.edge_label(g.edge_index(1, 2)), 8u);
}

TEST(RemoveEdgeRegression, RemovingLastEdgeOfANode) {
  Graph g = gen::star(5);  // centre 0, leaves 1..4
  g.remove_edge(0, 3);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_EQ(g.degree(0), 3);
  expect_adjacency_consistent(g);
  // Ports of the centre's remaining neighbours stay id-sorted and dense.
  for (const HalfEdge& h : g.neighbors(0)) {
    EXPECT_EQ(g.neighbor_at_port(0, g.port_of(0, h.to)), h.to);
  }
  // The isolated node can be re-attached.
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(3), 1);
  expect_adjacency_consistent(g);
}

TEST(RemoveEdgeRegression, ParallelEdgesStayRejectedAroundRemoval) {
  Graph g = gen::cycle(5);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);  // already present
  g.remove_edge(0, 1);
  const int e = g.add_edge(0, 1, 42);  // re-adding once is fine...
  EXPECT_EQ(g.edge_label(g.edge_index(0, 1)), 42u);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);  // ...twice is not
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);  // either direction
  EXPECT_EQ(g.edge_index(1, 0), e);
  expect_adjacency_consistent(g);
}

TEST(RemoveEdgeRegression, ReversedEndpointOrder) {
  Graph g = gen::cycle(4);
  g.remove_edge(2, 1);  // stored as {1,2}
  EXPECT_FALSE(g.has_edge(1, 2));
  expect_adjacency_consistent(g);
}

TEST(RemoveEdgeRegression, RemoveThenReAddInOneBatch) {
  Graph g = gen::grid(3, 3);
  Proof p = Proof::empty(g.n());
  const std::uint64_t before = DeltaTracker::state_fingerprint_of(g, p);
  DeltaTracker tracker(g, p, 1);

  MutationBatch batch;
  batch.remove_edge(1, 4);
  batch.add_edge(1, 4);     // same endpoints, default label/weight
  batch.remove_edge(4, 7);
  batch.add_edge(4, 7, 5);  // same endpoints, new label
  tracker.apply(batch);

  EXPECT_TRUE(g.has_edge(1, 4));
  EXPECT_TRUE(g.has_edge(4, 7));
  EXPECT_EQ(g.edge_label(g.edge_index(4, 7)), 5u);
  expect_adjacency_consistent(g);
  // The fingerprint is content-based, so the round trip with identical
  // labels must cancel exactly and stay in sync with a recompute.
  EXPECT_EQ(tracker.state_fingerprint(),
            DeltaTracker::state_fingerprint_of(g, p));
  g.set_edge_label(g.edge_index(4, 7), 0);
  EXPECT_EQ(DeltaTracker::state_fingerprint_of(g, p), before);
}

TEST(RemoveEdgeRegression, ChurnedGraphMatchesFreshBuild) {
  // Randomly churn, then rebuild the survivor set from scratch: both the
  // structural fingerprint and every port assignment must coincide.
  Graph g = gen::random_connected(30, 0.15, 99);
  const int keep_from = g.m() / 3;
  for (int e = g.m() - 1; e >= keep_from; --e) {
    g.remove_edge(g.edge_u(e), g.edge_v(e));
  }
  expect_adjacency_consistent(g);

  Graph fresh;
  for (int v = 0; v < g.n(); ++v) fresh.add_node(g.id(v), g.label(v));
  for (int e = 0; e < g.m(); ++e) {
    fresh.add_edge(g.edge_u(e), g.edge_v(e), g.edge_label(e),
                   g.edge_weight(e));
  }
  EXPECT_EQ(graph_fingerprint(g), graph_fingerprint(fresh));
  for (int v = 0; v < g.n(); ++v) {
    ASSERT_EQ(g.degree(v), fresh.degree(v));
    for (const HalfEdge& h : g.neighbors(v)) {
      EXPECT_EQ(g.port_of(v, h.to), fresh.port_of(v, h.to));
    }
  }
}

}  // namespace
}  // namespace lcp
