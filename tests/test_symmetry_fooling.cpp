// Section 6.1/6.2: asymmetric-graph counting, the G1 (.) G2 join, and the
// proof-transplant attack on truncated universal schemes.
#include <gtest/gtest.h>

#include "algo/isomorphism.hpp"
#include "lower/symmetry_fooling.hpp"
#include "schemes/universal.hpp"

namespace lcp::lower {
namespace {

TEST(AsymmetricCounts, NoSmallAsymmetricGraphs) {
  // Classical fact: besides K1, no asymmetric graph has fewer than 6 nodes.
  EXPECT_EQ(count_asymmetric_connected(1).classes, 1);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_EQ(count_asymmetric_connected(k).classes, 0) << k;
  }
}

TEST(AsymmetricCounts, SixNodesHasEight) {
  // Known: exactly 8 asymmetric connected graphs on 6 vertices.
  const AsymmetricCount c = count_asymmetric_connected(6);
  EXPECT_EQ(c.classes, 8);
  EXPECT_EQ(c.labeled, 8 * 720);
}

TEST(AsymmetricCounts, RepresentativesMatchTheCount) {
  const auto reps = asymmetric_connected_representatives(6);
  EXPECT_EQ(reps.size(), 8u);
  for (const Graph& g : reps) {
    EXPECT_FALSE(has_nontrivial_automorphism(g));
    for (const Graph& h : reps) {
      if (&g != &h) {
        EXPECT_FALSE(are_isomorphic(g, h));
      }
    }
  }
}

TEST(Join, SymmetricIffIsomorphicHalves) {
  const auto reps = asymmetric_connected_representatives(6);
  ASSERT_GE(reps.size(), 2u);
  const Graph& g1 = reps[0];
  const Graph& g2 = reps[1];
  EXPECT_TRUE(has_nontrivial_automorphism(join_graphs(g1, g1)));
  EXPECT_TRUE(has_nontrivial_automorphism(join_graphs(g2, g2)));
  EXPECT_FALSE(has_nontrivial_automorphism(join_graphs(g1, g2)));
}

TEST(Join, StructureIsThreeKNodes) {
  const auto reps = asymmetric_connected_representatives(6);
  const Graph j = join_graphs(reps[0], reps[0]);
  EXPECT_EQ(j.n(), 18);
  EXPECT_EQ(j.m(), reps[0].m() * 2 + 7);  // two copies + path of k+1 edges
}

TEST(Transplant, TruncatedUniversalSchemeIsFooled) {
  const auto reps = asymmetric_connected_representatives(6);
  // Budget below the first differing bit (matrix area): the attack lands.
  const auto scheme = schemes::make_symmetric_graph_scheme(/*trunc=*/150);
  const TransplantOutcome o =
      run_symmetry_transplant(*scheme, reps[0], reps[1]);
  EXPECT_TRUE(o.proofs_exist);
  EXPECT_TRUE(o.labels_agree_on_window);
  EXPECT_TRUE(o.all_accept);
  EXPECT_FALSE(o.glued_is_yes);
  EXPECT_TRUE(o.fooled());
}

TEST(Transplant, HonestUniversalSchemeResists) {
  const auto reps = asymmetric_connected_representatives(6);
  const auto scheme = schemes::make_symmetric_graph_scheme(/*trunc=*/0);
  const TransplantOutcome o =
      run_symmetry_transplant(*scheme, reps[0], reps[1]);
  EXPECT_TRUE(o.proofs_exist);
  // Full proofs differ (they encode different matrices), so the window
  // labels cannot agree and the attack never gets off the ground.
  EXPECT_FALSE(o.labels_agree_on_window);
  EXPECT_FALSE(o.fooled());
  EXPECT_GE(o.first_label_difference, 0);
}

TEST(Transplant, FirstDifferenceSitsInTheMatrixArea) {
  // Identical id blocks force the first difference past the header+ids,
  // i.e. the collision threshold scales with n^2 — only a constant factor
  // below the trivial upper bound, exactly Section 6.1's message.
  const auto reps = asymmetric_connected_representatives(6);
  const auto scheme = schemes::make_symmetric_graph_scheme(0);
  const TransplantOutcome o =
      run_symmetry_transplant(*scheme, reps[0], reps[1]);
  const int n = 18;
  const int header = 6 + 20;
  const int ids = n * 5;  // width 5 for ids up to 18
  EXPECT_GE(o.first_label_difference, header + ids);
  EXPECT_LT(o.first_label_difference, header + ids + n * n);
}

}  // namespace
}  // namespace lcp::lower
