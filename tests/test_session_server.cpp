// SessionServer behaviour suite: session lifecycle through the in-process
// surface and the wire protocol, admission backpressure (OVERLOADED and
// recovery), batch coalescing, verdict polling with a bounded history,
// close-with-drain semantics, observability wiring, and the blocking
// socket front end driven over a socketpair.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/delta.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "obs/journal.hpp"
#include "obs/telemetry.hpp"
#include "server/protocol.hpp"
#include "server/session_server.hpp"
#include "server/socket_server.hpp"

namespace lcp::server {
namespace {

constexpr std::uint64_t kGraphId = 1;

SessionServerOptions small_options() {
  SessionServerOptions options;
  options.lanes = 2;
  return options;
}

/// A server preloaded with one small bipartite grid.
std::unique_ptr<SessionServer> grid_server(SessionServerOptions options) {
  auto server = std::make_unique<SessionServer>(std::move(options));
  server->submit_graph(kGraphId, gen::grid(6, 6));
  return server;
}

std::uint64_t open_bipartite(SessionServer& server) {
  const OpenResult opened =
      server.open_session(kGraphId, "bipartite", "incremental", false);
  EXPECT_TRUE(opened.ok) << opened.error;
  return opened.session_id;
}

MutationBatch relabel(int node, std::uint64_t label) {
  MutationBatch batch;
  batch.set_node_label(node, label);
  return batch;
}

/// Polls until the ticket resolves (the server applies asynchronously).
VerdictRecord await_verdict(SessionServer& server, std::uint64_t session,
                            std::uint64_t ticket) {
  VerdictRecord record;
  for (int i = 0; i < 20000; ++i) {
    const PollStatus status = server.poll(session, ticket, &record);
    if (status == PollStatus::kDone) return record;
    EXPECT_EQ(status, PollStatus::kPending);
    std::this_thread::yield();
  }
  ADD_FAILURE() << "ticket " << ticket << " never resolved";
  return record;
}

TEST(SessionServer, LifecycleAndVerdicts) {
  auto server = grid_server(small_options());
  const std::uint64_t session = open_bipartite(*server);
  EXPECT_EQ(server->session_count(), 1u);

  std::uint64_t ticket = 0;
  std::uint32_t depth = 0;
  ASSERT_EQ(server->apply_deltas(session, relabel(3, 5), &ticket, &depth),
            AdmitStatus::kAccepted);
  EXPECT_GE(ticket, 1u);
  const VerdictRecord record = await_verdict(*server, session, ticket);
  // Node labels are inert for bipartiteness: the verdict stays accepting.
  EXPECT_FALSE(record.failed);
  EXPECT_TRUE(record.all_accept);
  EXPECT_EQ(record.rejecting, 0u);
  EXPECT_GE(record.generation, 1u);
  EXPECT_GE(record.coalesced, 1u);

  SessionSnapshot snapshot;
  ASSERT_TRUE(server->get_stats(session, &snapshot));
  EXPECT_EQ(snapshot.generation, record.generation);
  EXPECT_EQ(snapshot.fingerprint, record.fingerprint);
  EXPECT_EQ(snapshot.engine, "incremental");
  EXPECT_GE(snapshot.stats.batches, 1u);

  std::uint64_t generation = 0;
  std::uint64_t fingerprint = 0;
  ASSERT_TRUE(server->close_session(session, &generation, &fingerprint));
  EXPECT_EQ(generation, record.generation);
  EXPECT_EQ(fingerprint, record.fingerprint);
  EXPECT_EQ(server->session_count(), 0u);
  // The handle is dead: every surface reports unknown.
  EXPECT_EQ(server->apply_deltas(session, relabel(0, 1), &ticket, &depth),
            AdmitStatus::kUnknownSession);
  EXPECT_EQ(server->poll(session, ticket, nullptr),
            PollStatus::kUnknownSession);
  EXPECT_FALSE(server->close_session(session));
}

TEST(SessionServer, RejectionIsReportedNotFatal) {
  auto server = grid_server(small_options());
  const std::uint64_t session = open_bipartite(*server);
  // An odd cycle via one chord: (0,0)-(0,1)-(1,1)-(1,0) plus the chord
  // (0,0)-(1,1) makes a triangle, so bipartiteness fails somewhere.
  MutationBatch chord;
  chord.add_edge(0, 7, 0, 1);  // grid(6,6): node 7 is (1,1)
  std::uint64_t ticket = 0;
  ASSERT_EQ(server->apply_deltas(session, chord, &ticket, nullptr),
            AdmitStatus::kAccepted);
  const VerdictRecord record = await_verdict(*server, session, ticket);
  EXPECT_FALSE(record.failed);
  EXPECT_FALSE(record.all_accept);
  EXPECT_GT(record.rejecting, 0u);
  // The session survives a rejection: undo and re-verify clean.
  MutationBatch undo;
  undo.remove_edge(0, 7);
  ASSERT_EQ(server->apply_deltas(session, undo, &ticket, nullptr),
            AdmitStatus::kAccepted);
  EXPECT_TRUE(await_verdict(*server, session, ticket).all_accept);
}

TEST(SessionServer, FailedApplyMarksTicketAndSurvives) {
  auto server = grid_server(small_options());
  const std::uint64_t session = open_bipartite(*server);
  // Removing a non-existent edge makes the tracker throw; the ticket must
  // resolve as failed and the session must keep serving.
  MutationBatch bogus;
  bogus.remove_edge(0, 35);
  std::uint64_t ticket = 0;
  ASSERT_EQ(server->apply_deltas(session, bogus, &ticket, nullptr),
            AdmitStatus::kAccepted);
  EXPECT_TRUE(await_verdict(*server, session, ticket).failed);

  ASSERT_EQ(server->apply_deltas(session, relabel(1, 2), &ticket, nullptr),
            AdmitStatus::kAccepted);
  EXPECT_FALSE(await_verdict(*server, session, ticket).failed);
}

TEST(SessionServer, UnknownGraphAndBadScheme) {
  auto server = grid_server(small_options());
  const OpenResult unknown =
      server->open_session(99, "bipartite", "", false);
  EXPECT_FALSE(unknown.ok);
  EXPECT_TRUE(unknown.unknown_graph);
  const OpenResult bad =
      server->open_session(kGraphId, "no-such-scheme", "", false);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.unknown_graph);
  EXPECT_FALSE(bad.error.empty());
}

TEST(SessionServer, VerdictHistoryEvictsOldTickets) {
  SessionServerOptions options = small_options();
  options.verdict_history = 2;
  auto server = grid_server(options);
  const std::uint64_t session = open_bipartite(*server);
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 6; ++i) {
    std::uint64_t ticket = 0;
    ASSERT_EQ(server->apply_deltas(session, relabel(i, 1), &ticket, nullptr),
              AdmitStatus::kAccepted);
    tickets.push_back(ticket);
    await_verdict(*server, session, ticket);  // serialise: no coalescing
  }
  server->drain();
  // Only the last two verdicts remain; older tickets answer kUnknownTicket
  // (they were applied — completed_through covers them — but evicted).
  EXPECT_EQ(server->poll(session, tickets.front(), nullptr),
            PollStatus::kUnknownTicket);
  EXPECT_EQ(server->poll(session, tickets.back(), nullptr),
            PollStatus::kDone);
  // Never-issued tickets are unknown too, not pending.
  EXPECT_EQ(server->poll(session, 1000, nullptr),
            PollStatus::kUnknownTicket);
}

TEST(SessionServer, OverloadAndRecovery) {
  SessionServerOptions options;
  options.lanes = 1;
  options.max_pending_per_session = 2;
  options.telemetry = std::make_shared<obs::Telemetry>();
  auto server = std::make_unique<SessionServer>(options);
  // A big enough graph that one apply gives the submitter time to flood
  // the bounded queue of a second session.
  server->submit_graph(kGraphId, gen::grid(40, 40));
  const std::uint64_t blocker = open_bipartite(*server);
  const std::uint64_t victim = open_bipartite(*server);

  bool overloaded = false;
  for (int attempt = 0; attempt < 50 && !overloaded; ++attempt) {
    // Occupy the single lane: a structural batch on the big grid keeps it
    // busy while the victim's queue fills.
    MutationBatch churn;
    churn.add_edge(0, 81, 0, 1);
    std::uint64_t ticket = 0;
    ASSERT_EQ(server->apply_deltas(blocker, churn, &ticket, nullptr),
              AdmitStatus::kAccepted);
    for (int i = 0; i < 8; ++i) {
      std::uint32_t depth = 0;
      const AdmitStatus status =
          server->apply_deltas(victim, relabel(i, 1), nullptr, &depth);
      if (status == AdmitStatus::kOverloaded) {
        overloaded = true;
        EXPECT_EQ(depth, 2u);  // the reply reports the full queue
        break;
      }
      ASSERT_EQ(status, AdmitStatus::kAccepted);
    }
    server->drain();
    MutationBatch undo;
    undo.remove_edge(0, 81);
    std::uint64_t ticket2 = 0;
    ASSERT_EQ(server->apply_deltas(blocker, undo, &ticket2, nullptr),
              AdmitStatus::kAccepted);
    server->drain();
  }
  ASSERT_TRUE(overloaded) << "queue never filled; lane too fast?";

  // Recovery: once drained, the same session admits again.
  std::uint64_t ticket = 0;
  ASSERT_EQ(server->apply_deltas(victim, relabel(0, 3), &ticket, nullptr),
            AdmitStatus::kAccepted);
  EXPECT_FALSE(await_verdict(*server, victim, ticket).failed);

  const obs::MetricSnapshot snap = options.telemetry->metrics.snapshot();
  bool saw_overloads = false;
  for (const auto& counter : snap.counters) {
    if (counter.name == "server.overloads") {
      saw_overloads = counter.value >= 1;
    }
  }
  EXPECT_TRUE(saw_overloads);
}

TEST(SessionServer, CoalescingMergesQueuedBatches) {
  SessionServerOptions options;
  options.lanes = 1;
  options.record_applied_batches = true;
  auto server = std::make_unique<SessionServer>(options);
  server->submit_graph(kGraphId, gen::grid(40, 40));
  const std::uint64_t blocker = open_bipartite(*server);
  const std::uint64_t target = open_bipartite(*server);

  std::uint32_t best = 0;
  for (int attempt = 0; attempt < 50 && best < 2; ++attempt) {
    // The blocker's structural apply holds the single lane (FIFO ring:
    // it was pushed first), so the target's batches pile up behind it.
    MutationBatch churn;
    if (attempt % 2 == 0) {
      churn.add_edge(0, 81, 0, 1);
    } else {
      churn.remove_edge(0, 81);
    }
    ASSERT_EQ(server->apply_deltas(blocker, churn, nullptr, nullptr),
              AdmitStatus::kAccepted);
    std::vector<std::uint64_t> tickets;
    for (int i = 0; i < 6; ++i) {
      std::uint64_t ticket = 0;
      ASSERT_EQ(
          server->apply_deltas(target, relabel(i, 1 + attempt), &ticket,
                               nullptr),
          AdmitStatus::kAccepted);
      tickets.push_back(ticket);
    }
    server->drain();
    for (const std::uint64_t ticket : tickets) {
      VerdictRecord record;
      ASSERT_EQ(server->poll(target, ticket, &record), PollStatus::kDone);
      if (record.coalesced > best) best = record.coalesced;
      // Tickets served by one apply share its verdict markers.
      EXPECT_TRUE(record.all_accept);
    }
  }
  EXPECT_GE(best, 2u) << "no admission group ever coalesced";

  // The coalesced applies were recorded: fewer applies than client
  // batches, and the op total matches what the clients submitted.
  const std::vector<MutationBatch> applied =
      server->applied_batches(target);
  std::size_t ops = 0;
  for (const MutationBatch& b : applied) ops += b.size();
  std::size_t admitted = 0;
  {
    SessionSnapshot snapshot;
    ASSERT_TRUE(server->get_stats(target, &snapshot));
    admitted = snapshot.stats.batches;  // one per apply, not per client
  }
  EXPECT_EQ(applied.size(), admitted);
  EXPECT_LT(applied.size(), ops);  // every client batch had exactly 1 op
}

TEST(SessionServer, MaxCoalesceOneDisablesMerging) {
  SessionServerOptions options = small_options();
  options.max_coalesce = 1;
  auto server = grid_server(options);
  const std::uint64_t session = open_bipartite(*server);
  const int batches = 12;
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < batches; ++i) {
    std::uint64_t ticket = 0;
    ASSERT_EQ(server->apply_deltas(session, relabel(i % 36, 2), &ticket,
                                   nullptr),
              AdmitStatus::kAccepted);
    tickets.push_back(ticket);
  }
  server->drain();
  for (const std::uint64_t ticket : tickets) {
    VerdictRecord record;
    ASSERT_EQ(server->poll(session, ticket, &record), PollStatus::kDone);
    EXPECT_EQ(record.coalesced, 1u);
  }
  // One tracker generation per client batch: nothing merged.
  SessionSnapshot snapshot;
  ASSERT_TRUE(server->get_stats(session, &snapshot));
  EXPECT_EQ(snapshot.generation, static_cast<std::uint64_t>(batches));
}

TEST(SessionServer, CloseDrainsQueuedWork) {
  SessionServerOptions options;
  options.lanes = 1;
  auto server = grid_server(options);
  const std::uint64_t session = open_bipartite(*server);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(server->apply_deltas(session, relabel(i, 7), nullptr, nullptr),
              AdmitStatus::kAccepted);
  }
  std::uint64_t generation = 0;
  ASSERT_TRUE(server->close_session(session, &generation, nullptr));
  // Every queued batch was applied before the session died.
  EXPECT_GE(generation, 1u);
  EXPECT_EQ(server->total_queue_depth(), 0u);
}

TEST(SessionServer, ObservabilitySurfaces) {
  SessionServerOptions options = small_options();
  options.telemetry = std::make_shared<obs::Telemetry>();
  options.journal = std::make_shared<obs::Journal>();
  auto server = grid_server(options);
  const std::uint64_t session = open_bipartite(*server);
  std::uint64_t ticket = 0;
  ASSERT_EQ(server->apply_deltas(session, relabel(0, 1), &ticket, nullptr),
            AdmitStatus::kAccepted);
  await_verdict(*server, session, ticket);

  const obs::MetricSnapshot snap = options.telemetry->metrics.snapshot();
  EXPECT_TRUE(snap.has("server.admitted"));
  EXPECT_TRUE(snap.has("server.applies"));
  EXPECT_TRUE(snap.has("server.coalesced_batches"));
  EXPECT_TRUE(snap.has("server.apply.latency"));
  EXPECT_TRUE(snap.has("server.sessions"));
  EXPECT_TRUE(snap.has("server.queue_depth"));
  EXPECT_TRUE(snap.has("server.max_queue_depth"));
  EXPECT_TRUE(snap.has("pool.server.lanes"));
  double sessions_gauge = -1;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "server.sessions") sessions_gauge = gauge.value;
  }
  EXPECT_EQ(sessions_gauge, 1.0);
  for (const auto& hist : snap.histograms) {
    if (hist.name == "server.apply.latency") {
      EXPECT_GE(hist.count, 1u);
    }
  }

  bool admit = false;
  for (const obs::JournalEvent& event : options.journal->events()) {
    if (event.kind == obs::JournalEventKind::kServerAdmit) admit = true;
  }
  EXPECT_TRUE(admit);

  // Tearing the server down withdraws its derived gauges: a snapshot
  // after destruction must not call into freed memory.
  server.reset();
  const obs::MetricSnapshot after = options.telemetry->metrics.snapshot();
  EXPECT_FALSE(after.has("server.sessions"));
  EXPECT_TRUE(after.has("server.admitted"));  // counters stay
}

// ---------------------------------------------------------------------------
// Wire surface: loopback connection.

/// Feeds one request frame and decodes the single reply it produces.
template <typename Reply>
Reply ask(LoopbackConnection& conn, const std::vector<std::uint8_t>& bytes) {
  const auto replies = conn.feed(bytes);
  EXPECT_EQ(replies.size(), 1u);
  FrameParser parser;
  parser.feed(replies[0].data(), replies[0].size());
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kOk);
  Reply reply;
  EXPECT_TRUE(decode(frame, &reply))
      << "unexpected reply type " << msg_type_name(frame.type);
  return reply;
}

TEST(LoopbackConnection, FullProtocolConversation) {
  SessionServer server(small_options());
  LoopbackConnection conn(server);

  SubmitGraphRequest submit;
  submit.graph_id = 42;
  submit.graph = gen::grid(5, 5);
  const GraphAckReply ack = ask<GraphAckReply>(conn, encode(submit));
  EXPECT_EQ(ack.graph_id, 42u);
  EXPECT_EQ(ack.nodes, 25u);
  EXPECT_EQ(ack.edges, 40u);

  OpenSessionRequest open;
  open.graph_id = 42;
  open.scheme = "bipartite";
  const SessionOpenedReply opened =
      ask<SessionOpenedReply>(conn, encode(open));
  ASSERT_GE(opened.session_id, 1u);

  ApplyDeltasRequest apply;
  apply.session_id = opened.session_id;
  apply.batch.set_node_label(3, 9);
  const DeltasAcceptedReply accepted =
      ask<DeltasAcceptedReply>(conn, encode(apply));
  EXPECT_EQ(accepted.session_id, opened.session_id);
  ASSERT_GE(accepted.ticket, 1u);

  PollVerdictRequest poll;
  poll.session_id = opened.session_id;
  poll.ticket = accepted.ticket;
  VerdictReply verdict;
  for (int i = 0; i < 20000; ++i) {
    verdict = ask<VerdictReply>(conn, encode(poll));
    if (verdict.status != 0) break;
    std::this_thread::yield();
  }
  EXPECT_EQ(verdict.status, 1);
  EXPECT_TRUE(verdict.all_accept);
  EXPECT_GE(verdict.coalesced, 1u);

  GetStatsRequest stats_req;
  stats_req.session_id = opened.session_id;
  const StatsReply stats = ask<StatsReply>(conn, encode(stats_req));
  EXPECT_EQ(stats.generation, verdict.generation);
  EXPECT_EQ(stats.fingerprint, verdict.fingerprint);
  EXPECT_GE(stats.batches, 1u);

  CloseRequest close_req;
  close_req.session_id = opened.session_id;
  const ClosedReply closed = ask<ClosedReply>(conn, encode(close_req));
  EXPECT_EQ(closed.generation, verdict.generation);
  EXPECT_EQ(closed.fingerprint, verdict.fingerprint);

  // The handle is gone: polling now earns an ERROR reply.
  const ErrorReply error = ask<ErrorReply>(conn, encode(poll));
  EXPECT_EQ(error.code, ErrorCode::kUnknownSession);
}

TEST(LoopbackConnection, SurvivesDamagedFrames) {
  SessionServer server(small_options());
  LoopbackConnection conn(server, /*max_frame_bytes=*/4096);

  // 1. A bad-version frame earns an ERROR and is skipped.
  std::vector<std::uint8_t> bad = encode(GetStatsRequest{1});
  bad[4] = 9;
  ErrorReply error = ask<ErrorReply>(conn, bad);
  EXPECT_EQ(error.code, ErrorCode::kBadVersion);

  // 2. An oversized announcement earns an ERROR; its streamed body is
  // swallowed without a reply.
  std::vector<std::uint8_t> lie;
  WireWriter w(&lie);
  w.u32(100000);
  error = ask<ErrorReply>(conn, lie);
  EXPECT_EQ(error.code, ErrorCode::kOversizedFrame);
  std::vector<std::uint8_t> junk(100000, 0x5a);
  EXPECT_TRUE(conn.feed(junk).empty());

  // 3. An under-length frame earns an ERROR.
  std::vector<std::uint8_t> runt;
  WireWriter rw(&runt);
  rw.u32(0);
  error = ask<ErrorReply>(conn, runt);
  EXPECT_EQ(error.code, ErrorCode::kMalformedFrame);

  // 4. A well-framed payload of the wrong shape earns an ERROR with the
  // malformed code (decode failure, not a parser skip).
  std::vector<std::uint8_t> short_payload = {1, 2, 3};
  error = ask<ErrorReply>(
      conn, encode_frame(MsgType::kGetStats, short_payload));
  EXPECT_EQ(error.code, ErrorCode::kMalformedFrame);

  // 5. An unknown frame type earns kUnknownType.
  error = ask<ErrorReply>(conn, encode_frame(static_cast<MsgType>(0x55), {}));
  EXPECT_EQ(error.code, ErrorCode::kUnknownType);

  // After all that damage, the connection still serves real requests.
  SubmitGraphRequest submit;
  submit.graph_id = 7;
  submit.graph = gen::cycle(8);
  const GraphAckReply ack = ask<GraphAckReply>(conn, encode(submit));
  EXPECT_EQ(ack.nodes, 8u);
}

// ---------------------------------------------------------------------------
// Socket front end.

/// Client-side helper over a connected fd: send bytes, parse reply frames.
class FdClient {
 public:
  explicit FdClient(int fd) : fd_(fd) {}

  template <typename Reply>
  Reply ask(const std::vector<std::uint8_t>& bytes) {
    EXPECT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    Frame frame;
    for (;;) {
      const DecodeStatus status = parser_.next(&frame);
      if (status == DecodeStatus::kOk) break;
      EXPECT_EQ(status, DecodeStatus::kNeedMore);
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      EXPECT_GT(n, 0);
      if (n <= 0) return Reply{};
      parser_.feed(buf, static_cast<std::size_t>(n));
    }
    Reply reply;
    EXPECT_TRUE(decode(frame, &reply))
        << "unexpected reply type " << msg_type_name(frame.type);
    return reply;
  }

 private:
  int fd_;
  FrameParser parser_;
};

TEST(SocketServer, ServeFdOverSocketpair) {
  SessionServer server(small_options());
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serving([&] { serve_fd(server, fds[0]); });

  FdClient client(fds[1]);
  SubmitGraphRequest submit;
  submit.graph_id = 3;
  submit.graph = gen::grid(4, 4);
  EXPECT_EQ(client.ask<GraphAckReply>(encode(submit)).nodes, 16u);

  OpenSessionRequest open;
  open.graph_id = 3;
  open.scheme = "bipartite";
  const SessionOpenedReply opened =
      client.ask<SessionOpenedReply>(encode(open));
  ASSERT_GE(opened.session_id, 1u);

  ApplyDeltasRequest apply;
  apply.session_id = opened.session_id;
  apply.batch.set_node_label(0, 4);
  const DeltasAcceptedReply accepted =
      client.ask<DeltasAcceptedReply>(encode(apply));
  EXPECT_GE(accepted.ticket, 1u);

  CloseRequest close_req;
  close_req.session_id = opened.session_id;
  const ClosedReply closed = client.ask<ClosedReply>(encode(close_req));
  EXPECT_GE(closed.generation, 1u);

  ::close(fds[1]);  // orderly shutdown: serve_fd returns
  serving.join();
  ::close(fds[0]);
}

TEST(SocketServer, ListensAndServesConcurrentConnections) {
  SessionServer server(small_options());
  server.submit_graph(kGraphId, gen::grid(5, 5));
  SocketServer listener(server, /*port=*/0);
  ASSERT_GT(listener.port(), 0);

  auto run_client = [&](int rounds) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(listener.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0);
    FdClient client(fd);
    OpenSessionRequest open;
    open.graph_id = kGraphId;
    open.scheme = "bipartite";
    const SessionOpenedReply opened =
        client.ask<SessionOpenedReply>(encode(open));
    ASSERT_GE(opened.session_id, 1u);
    for (int i = 0; i < rounds; ++i) {
      ApplyDeltasRequest apply;
      apply.session_id = opened.session_id;
      apply.batch.set_node_label(i % 25, static_cast<std::uint64_t>(i));
      const DeltasAcceptedReply accepted =
          client.ask<DeltasAcceptedReply>(encode(apply));
      ASSERT_GE(accepted.ticket, 1u);
    }
    CloseRequest close_req;
    close_req.session_id = opened.session_id;
    client.ask<ClosedReply>(encode(close_req));
    ::close(fd);
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back(run_client, 20);
  }
  for (std::thread& t : clients) t.join();
  listener.stop();
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(SocketServer, StopUnblocksIdleConnections) {
  // A client that connects and then goes silent must not wedge stop():
  // the server shuts the connection down, the blocked recv() returns,
  // and the client observes EOF.
  SessionServer server(small_options());
  server.submit_graph(kGraphId, gen::grid(5, 5));
  SocketServer listener(server, /*port=*/0);
  ASSERT_GT(listener.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listener.port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0);
  FdClient client(fd);
  OpenSessionRequest open;
  open.graph_id = kGraphId;
  open.scheme = "bipartite";
  const SessionOpenedReply opened =
      client.ask<SessionOpenedReply>(encode(open));
  ASSERT_GE(opened.session_id, 1u);

  listener.stop();  // connection still open — must return anyway

  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // server closed its end
  ::close(fd);
}

}  // namespace
}  // namespace lcp::server
