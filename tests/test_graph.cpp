// Graph substrate: invariants, ports, generators, directed helpers.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "graph/directed.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"

namespace lcp {
namespace {

TEST(Graph, AddNodeAssignsDenseIndices) {
  Graph g;
  EXPECT_EQ(g.add_node(10), 0);
  EXPECT_EQ(g.add_node(20), 1);
  EXPECT_EQ(g.n(), 2);
  EXPECT_EQ(g.id(0), 10u);
  EXPECT_EQ(g.id(1), 20u);
}

TEST(Graph, DuplicateIdThrows) {
  Graph g;
  g.add_node(5);
  EXPECT_THROW(g.add_node(5), std::invalid_argument);
}

TEST(Graph, SelfLoopAndParallelEdgesThrow) {
  Graph g;
  g.add_node(1);
  g.add_node(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(Graph, AdjacencySortedById) {
  Graph g;
  g.add_node(50);  // index 0
  g.add_node(10);  // index 1
  g.add_node(30);  // index 2
  g.add_node(20);  // index 3
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(g.id(nbrs[0].to), 10u);
  EXPECT_EQ(g.id(nbrs[1].to), 20u);
  EXPECT_EQ(g.id(nbrs[2].to), 30u);
}

TEST(Graph, PortNumbersFollowIdOrder) {
  Graph g = gen::star(4);  // centre id 1 adjacent to ids 2,3,4
  EXPECT_EQ(g.port_of(0, 1), 0);
  EXPECT_EQ(g.port_of(0, 2), 1);
  EXPECT_EQ(g.port_of(0, 3), 2);
  EXPECT_EQ(g.neighbor_at_port(0, 1), 2);
  EXPECT_EQ(g.port_of(1, 2), -1);  // leaves are not adjacent
}

TEST(Graph, EdgeLabelsAndWeightsRoundTrip) {
  Graph g;
  g.add_node(1);
  g.add_node(2);
  const int e = g.add_edge(0, 1, 7, -3);
  EXPECT_EQ(g.edge_label(e), 7u);
  EXPECT_EQ(g.edge_weight(e), -3);
  g.set_edge_label(e, 9);
  g.set_edge_weight(e, 4);
  EXPECT_EQ(g.edge_label(e), 9u);
  EXPECT_EQ(g.edge_weight(e), 4);
}

TEST(Graph, IndexOfAndFindLabel) {
  Graph g;
  g.add_node(42, 0);
  g.add_node(43, 5);
  EXPECT_EQ(g.index_of(43), 1);
  EXPECT_EQ(g.index_of(99), std::nullopt);
  EXPECT_EQ(g.find_label(5), 1);
  EXPECT_EQ(g.find_label(6), std::nullopt);
}

TEST(Generators, CycleShape) {
  const Graph g = gen::cycle(7);
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 7);
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Generators, PathShape) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.m(), 4);
  int leaves = 0;
  for (int v = 0; v < g.n(); ++v) {
    if (g.degree(v) == 1) ++leaves;
  }
  EXPECT_EQ(leaves, 2);
}

TEST(Generators, CompleteAndBipartite) {
  EXPECT_EQ(gen::complete(6).m(), 15);
  const Graph kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.m(), 12);
  EXPECT_EQ(kb.n(), 7);
}

TEST(Generators, GridIsPlanarSized) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.n(), 12);
  EXPECT_EQ(g.m(), 3 * 3 + 2 * 4);  // 17
}

TEST(Generators, PetersenIsCubic) {
  const Graph g = gen::petersen();
  EXPECT_EQ(g.n(), 10);
  EXPECT_EQ(g.m(), 15);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(Generators, HypercubeDegrees) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.n(), 16);
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, RandomTreeHasTreeShape) {
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    const Graph g = gen::random_tree(9, seed);
    EXPECT_EQ(g.m(), g.n() - 1);
    const auto dist = bfs_distances(g, 0);
    for (int d : dist) EXPECT_GE(d, 0);  // connected
  }
}

TEST(Generators, RandomTreeMatchesScanDecoder) {
  // The heap-based Prufer decoder must emit the exact edge sequence of the
  // original ascending-scan decoder (both always pick the smallest
  // eligible leaf), so seeds keep producing the same graphs forever.
  auto scan_decode = [](int n, std::uint32_t seed) {
    Graph g;
    for (int i = 1; i <= n; ++i) g.add_node(static_cast<NodeId>(i));
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> node(0, n - 1);
    std::vector<int> prufer(static_cast<std::size_t>(n - 2));
    for (int& x : prufer) x = node(rng);
    std::vector<int> degree(static_cast<std::size_t>(n), 1);
    for (int x : prufer) ++degree[static_cast<std::size_t>(x)];
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (int x : prufer) {
      int leaf = -1;
      for (int v = 0; v < n; ++v) {
        if (degree[static_cast<std::size_t>(v)] == 1 &&
            !used[static_cast<std::size_t>(v)]) {
          leaf = v;
          break;
        }
      }
      g.add_edge(leaf, x);
      used[static_cast<std::size_t>(leaf)] = true;
      --degree[static_cast<std::size_t>(x)];
    }
    int a = -1;
    int b = -1;
    for (int v = 0; v < n; ++v) {
      if (degree[static_cast<std::size_t>(v)] == 1 &&
          !used[static_cast<std::size_t>(v)]) {
        (a < 0 ? a : b) = v;
      }
    }
    g.add_edge(a, b);
    return g;
  };
  for (int n : {3, 4, 9, 40}) {
    for (std::uint32_t seed = 0; seed < 10; ++seed) {
      const Graph want = scan_decode(n, seed);
      const Graph got = gen::random_tree(n, seed);
      ASSERT_EQ(got.m(), want.m());
      for (int e = 0; e < want.m(); ++e) {
        EXPECT_EQ(got.edge_u(e), want.edge_u(e)) << n << "/" << seed;
        EXPECT_EQ(got.edge_v(e), want.edge_v(e)) << n << "/" << seed;
      }
    }
  }
}

TEST(Generators, RandomSparseConnectedHasExactEdgeCount) {
  for (std::uint32_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::random_sparse_connected(200, 120, seed);
    EXPECT_EQ(g.n(), 200);
    EXPECT_EQ(g.m(), 200 - 1 + 120);
    const auto dist = bfs_distances(g, 0);
    for (int d : dist) EXPECT_GE(d, 0);  // connected
  }
  EXPECT_THROW(gen::random_sparse_connected(4, 100, 1),
               std::invalid_argument);
  // Determinism: same seed, same graph.
  const Graph a = gen::random_sparse_connected(60, 30, 9);
  const Graph b = gen::random_sparse_connected(60, 30, 9);
  ASSERT_EQ(a.m(), b.m());
  for (int e = 0; e < a.m(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
  }
}

TEST(Generators, RandomConnectedIsConnected) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const Graph g = gen::random_connected(12, 0.2, seed);
    const auto dist = bfs_distances(g, 0);
    for (int d : dist) EXPECT_GE(d, 0);
  }
}

TEST(Generators, ShuffleIdsPreservesStructure) {
  const Graph g = gen::petersen();
  const Graph h = gen::shuffle_ids(g, 3);
  EXPECT_EQ(h.n(), g.n());
  EXPECT_EQ(h.m(), g.m());
  // Degrees preserved per node index (with_ids keeps indices).
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(h.degree(v), g.degree(v));
}

TEST(Generators, DisjointUnionOffsetsIds) {
  const Graph g = gen::disjoint_union(gen::cycle(3), gen::cycle(4));
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 7);
  const auto dist = bfs_distances(g, 0);
  int unreachable = 0;
  for (int d : dist) {
    if (d < 0) ++unreachable;
  }
  EXPECT_EQ(unreachable, 4);
}

TEST(Directed, ArcsAreOneWay) {
  Graph g = gen::path(3);
  directed::add_arc(g, 0, 1);
  directed::add_arc(g, 2, 1);
  EXPECT_TRUE(directed::has_arc(g, 0, 1));
  EXPECT_FALSE(directed::has_arc(g, 1, 0));
  EXPECT_TRUE(directed::has_arc(g, 2, 1));
  EXPECT_FALSE(directed::has_arc(g, 1, 2));
}

TEST(Directed, ReachabilityFollowsArcs) {
  Graph g = gen::path(4);
  directed::add_arc(g, 0, 1);
  directed::add_arc(g, 1, 2);
  directed::add_arc(g, 3, 2);
  const auto reach = directed::reachable_from(g, 0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(Subgraph, InducedPreservesIdsLabelsEdges) {
  Graph g = gen::cycle(5);
  g.set_label(2, 7);
  const Graph sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.n(), 3);
  EXPECT_EQ(sub.m(), 2);  // edges 1-2, 2-3
  EXPECT_EQ(sub.label(1), 7u);
  EXPECT_EQ(sub.id(0), 2u);
}

TEST(Subgraph, BallNodesRespectsRadius) {
  const Graph g = gen::path(9);
  const auto ball = ball_nodes(g, 4, 2);
  EXPECT_EQ(ball.size(), 5u);  // positions 2..6
  EXPECT_EQ(ball[0], 4);       // centre first
}

TEST(Subgraph, BfsDistancesOnCycle) {
  const Graph g = gen::cycle(8);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[4], 4);
  EXPECT_EQ(dist[7], 1);
}

}  // namespace
}  // namespace lcp
