// Section 7.4: the tabulated verifier agrees with the original everywhere,
// and the table stays small (poly, not exponential) on bounded-degree
// families — the executable core of "LogLCP (bounded degree) in NP/poly".
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "local/lookup_table.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

TEST(LookupTable, VerdictsMatchTheWrappedVerifier) {
  const schemes::BipartiteScheme scheme;
  const LookupTableVerifier table(scheme.verifier());
  for (int n : {4, 5, 6, 7, 8}) {
    const Graph g = gen::cycle(n);
    const auto proof = scheme.prove(g);
    const Proof p = proof.has_value() ? *proof : Proof::empty(n);
    const RunResult direct = default_engine().run(g, p, scheme.verifier());
    const RunResult tabulated = default_engine().run(g, p, table);
    EXPECT_EQ(direct.all_accept, tabulated.all_accept) << n;
    EXPECT_EQ(direct.rejecting, tabulated.rejecting) << n;
  }
}

TEST(LookupTable, RepeatedViewsAreAnsweredFromTheTable) {
  const schemes::BipartiteScheme scheme;
  const LookupTableVerifier table(scheme.verifier());
  const Graph g = gen::cycle(8);
  const Proof p = *scheme.prove(g);
  default_engine().run(g, p, table);
  const std::size_t first_pass = table.table_size();
  default_engine().run(g, p, table);
  default_engine().run(g, p, table);
  EXPECT_EQ(table.table_size(), first_pass);  // nothing new
  EXPECT_GE(table.hits(), 2 * static_cast<std::size_t>(g.n()));
}

TEST(LookupTable, TableIsBoundedByDistinctViewsNotQueries) {
  // The NP/poly observation is about the table's *input space*: a
  // bounded-degree radius-r view holds O(1) nodes with O(log n)-bit data,
  // so at most poly(n) distinct views exist no matter how many times the
  // verifier runs.  We sweep a family once (each view tabulated at most
  // once), then re-verify everything twice more: queries triple, the
  // table does not grow at all.
  const schemes::LeaderElectionScheme scheme;
  const LookupTableVerifier table(scheme.verifier());
  std::vector<std::pair<Graph, Proof>> audits;
  for (int n = 24; n <= 33; ++n) {
    Graph g = gen::cycle(n);
    g.set_label(0, schemes::kLeaderFlag);
    const Proof p = *scheme.prove(g);
    audits.emplace_back(std::move(g), p);
  }
  for (const auto& [g, p] : audits) default_engine().run(g, p, table);
  const std::size_t after_first_sweep = table.table_size();
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const auto& [g, p] : audits) default_engine().run(g, p, table);
  }
  EXPECT_EQ(table.table_size(), after_first_sweep);
  EXPECT_EQ(table.hits(), 2 * after_first_sweep);
}

TEST(LookupTable, FingerprintSeparatesDifferentProofs) {
  const Graph g = gen::cycle(5);
  Proof a = Proof::empty(5);
  Proof b = Proof::empty(5);
  b.labels[0].append_bit(true);
  const View va = extract_view(g, a, 0, 1);
  const View vb = extract_view(g, b, 0, 1);
  EXPECT_NE(view_fingerprint(va), view_fingerprint(vb));
}

TEST(LookupTable, FingerprintSeparatesEdgeLabels) {
  Graph g1 = gen::cycle(5);
  Graph g2 = gen::cycle(5);
  g2.set_edge_label(0, 1);
  const Proof p = Proof::empty(5);
  EXPECT_NE(view_fingerprint(extract_view(g1, p, 0, 1)),
            view_fingerprint(extract_view(g2, p, 0, 1)));
}

}  // namespace
}  // namespace lcp
