// Graph properties are closed under re-assigning identifiers
// (Section 2.2).  For every pure-property scheme: re-identify the nodes,
// re-run the prover, and the verdict machinery must behave identically —
// holds() is invariant, the fresh proof verifies, and proof sizes stay
// within the O(log n) id-width wiggle room.
#include <gtest/gtest.h>

#include <memory>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "logic/sigma11.hpp"
#include "schemes/colcp0.hpp"
#include "schemes/cycle_certified.hpp"
#include "schemes/fixpoint_tree.hpp"
#include "schemes/lcp0.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/tree_certified.hpp"
#include "schemes/universal.hpp"

namespace lcp {
namespace {

struct InvarianceCase {
  std::string name;
  std::shared_ptr<const Scheme> scheme;
  Graph instance;
};

std::vector<InvarianceCase> cases() {
  std::vector<InvarianceCase> out;
  out.push_back({"eulerian/C8", std::make_shared<schemes::EulerianScheme>(),
                 gen::cycle(8)});
  out.push_back({"bipartite/grid",
                 std::make_shared<schemes::BipartiteScheme>(),
                 gen::grid(3, 4)});
  out.push_back({"non-bipartite/petersen",
                 std::make_shared<schemes::NonBipartiteScheme>(),
                 gen::petersen()});
  out.push_back({"odd-n/C9", std::make_shared<schemes::ParityScheme>(true),
                 gen::cycle(9)});
  out.push_back({"acyclic/tree",
                 std::make_shared<schemes::AcyclicScheme>(),
                 gen::random_tree(10, 6)});
  out.push_back({"co-eulerian/path",
                 std::make_shared<schemes::CoLcp0Scheme>(
                     std::make_shared<schemes::EulerianScheme>()),
                 gen::path(7)});
  out.push_back({"sigma11-2col/C6",
                 logic::make_sigma11_two_colorable_scheme(), gen::cycle(6)});
  out.push_back({"fixpoint-tree/P6",
                 std::make_shared<schemes::FixpointFreeTreeScheme>(),
                 gen::path(6)});
  out.push_back({"symmetric/C7", schemes::make_symmetric_graph_scheme(),
                 gen::cycle(7)});
  return out;
}

class IdInvariance : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IdInvariance, VerdictsSurviveReidentification) {
  const std::uint32_t seed = GetParam();
  for (const auto& c : cases()) {
    const Graph shuffled = gen::shuffle_ids(c.instance, seed);
    ASSERT_EQ(c.scheme->holds(c.instance), c.scheme->holds(shuffled))
        << c.name;
    if (!c.scheme->holds(shuffled)) continue;
    const auto proof = c.scheme->prove(shuffled);
    ASSERT_TRUE(proof.has_value()) << c.name;
    EXPECT_TRUE(
        default_engine().run(shuffled, *proof, c.scheme->verifier()).all_accept)
        << c.name << " seed " << seed;
  }
}

TEST_P(IdInvariance, SparseHugeIdsAreFine) {
  // Ids of full O(log n) width (the model allows up to poly(n)): verdicts
  // and verification must be unaffected.
  const std::uint32_t seed = GetParam();
  for (const auto& c : cases()) {
    std::vector<NodeId> ids = c.instance.ids();
    for (NodeId& id : ids) {
      id = id * 1009 + 17 * (seed + 1);  // sparse, order-scrambling-free
    }
    const Graph renamed = gen::with_ids(c.instance, ids);
    ASSERT_EQ(c.scheme->holds(c.instance), c.scheme->holds(renamed))
        << c.name;
    if (!c.scheme->holds(renamed)) continue;
    const auto proof = c.scheme->prove(renamed);
    ASSERT_TRUE(proof.has_value()) << c.name;
    EXPECT_TRUE(default_engine().run(renamed, *proof, c.scheme->verifier()).all_accept)
        << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdInvariance, ::testing::Range(1u, 6u));

}  // namespace
}  // namespace lcp
