// Wire-protocol suite: every message round-trips bit-exactly through a
// frame, the incremental parser reassembles frames from arbitrary byte
// splits, and damaged input (truncated length prefix, bad version,
// oversized or lying announced lengths, trailing garbage) is skipped
// precisely — the connection keeps decoding the frames after the damage.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/bitstring.hpp"
#include "core/delta.hpp"
#include "graph/generators.hpp"
#include "server/protocol.hpp"

namespace lcp::server {
namespace {

/// Encoded bytes -> one parsed frame; fails the test on anything else.
Frame parse_one(const std::vector<std::uint8_t>& bytes) {
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(parser.buffered(), 0u);
  return frame;
}

Graph sample_graph() {
  Graph g;
  g.add_node(100, 1);
  g.add_node(200, 2);
  g.add_node(300, 0);
  g.add_edge(0, 1, /*label=*/7, /*weight=*/-3);
  g.add_edge(1, 2, /*label=*/0, /*weight=*/5);
  return g;
}

MutationBatch sample_batch() {
  MutationBatch b;
  b.set_node_label(1, 42);
  b.set_edge_label(0, 1, 9);
  b.set_edge_weight(1, 2, -11);
  BitString bits;
  bits.append_bit(true);
  bits.append_bit(false);
  bits.append_bit(true);
  b.set_proof_label(2, bits);
  b.add_edge(0, 2, 3, 4);
  b.remove_edge(1, 2);
  b.add_node(999, 6);
  return b;
}

void expect_graph_eq(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  for (int v = 0; v < a.n(); ++v) {
    EXPECT_EQ(a.id(v), b.id(v)) << v;
    EXPECT_EQ(a.label(v), b.label(v)) << v;
  }
  for (int e = 0; e < a.m(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e)) << e;
    EXPECT_EQ(a.edge_v(e), b.edge_v(e)) << e;
    EXPECT_EQ(a.edge_label(e), b.edge_label(e)) << e;
    EXPECT_EQ(a.edge_weight(e), b.edge_weight(e)) << e;
  }
}

void expect_batch_eq(const MutationBatch& a, const MutationBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const MutationBatch::Op& x = a.ops()[i];
    const MutationBatch::Op& y = b.ops()[i];
    EXPECT_EQ(x.kind, y.kind) << i;
    EXPECT_EQ(x.u, y.u) << i;
    EXPECT_EQ(x.v, y.v) << i;
    EXPECT_EQ(x.label, y.label) << i;
    EXPECT_EQ(x.weight, y.weight) << i;
    EXPECT_EQ(x.id, y.id) << i;
    ASSERT_EQ(x.bits.size(), y.bits.size()) << i;
    for (int bit = 0; bit < x.bits.size(); ++bit) {
      EXPECT_EQ(x.bits.bit(bit), y.bits.bit(bit)) << i << "/" << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Round trips, one per message type.

TEST(ProtocolRoundTrip, SubmitGraph) {
  SubmitGraphRequest m;
  m.graph_id = 0xdeadbeefcafeull;
  m.graph = sample_graph();
  SubmitGraphRequest out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.graph_id, m.graph_id);
  expect_graph_eq(m.graph, out.graph);
}

TEST(ProtocolRoundTrip, GraphAck) {
  GraphAckReply m{12, 3, 2};
  GraphAckReply out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.graph_id, 12u);
  EXPECT_EQ(out.nodes, 3u);
  EXPECT_EQ(out.edges, 2u);
}

TEST(ProtocolRoundTrip, OpenSession) {
  OpenSessionRequest m;
  m.graph_id = 9;
  m.scheme = "leader-election & maximal-matching";
  m.engine = "sharded:4";
  m.maintain = true;
  OpenSessionRequest out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.graph_id, 9u);
  EXPECT_EQ(out.scheme, m.scheme);
  EXPECT_EQ(out.engine, m.engine);
  EXPECT_TRUE(out.maintain);
}

TEST(ProtocolRoundTrip, SessionOpened) {
  SessionOpenedReply m{77};
  SessionOpenedReply out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 77u);
}

TEST(ProtocolRoundTrip, ApplyDeltas) {
  ApplyDeltasRequest m;
  m.session_id = 5;
  m.batch = sample_batch();
  ApplyDeltasRequest out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 5u);
  expect_batch_eq(m.batch, out.batch);
}

TEST(ProtocolRoundTrip, DeltasAccepted) {
  DeltasAcceptedReply m{5, 17, 3};
  DeltasAcceptedReply out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 5u);
  EXPECT_EQ(out.ticket, 17u);
  EXPECT_EQ(out.queue_depth, 3u);
}

TEST(ProtocolRoundTrip, PollVerdict) {
  PollVerdictRequest m{5, 17};
  PollVerdictRequest out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 5u);
  EXPECT_EQ(out.ticket, 17u);
}

TEST(ProtocolRoundTrip, Verdict) {
  VerdictReply m;
  m.session_id = 5;
  m.ticket = 17;
  m.status = 1;
  m.all_accept = true;
  m.rejecting = 0;
  m.generation = 33;
  m.fingerprint = 0x1234567890abcdefull;
  m.coalesced = 4;
  VerdictReply out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 5u);
  EXPECT_EQ(out.ticket, 17u);
  EXPECT_EQ(out.status, 1);
  EXPECT_TRUE(out.all_accept);
  EXPECT_EQ(out.rejecting, 0u);
  EXPECT_EQ(out.generation, 33u);
  EXPECT_EQ(out.fingerprint, m.fingerprint);
  EXPECT_EQ(out.coalesced, 4u);
}

TEST(ProtocolRoundTrip, GetStatsAndStats) {
  GetStatsRequest req{8};
  GetStatsRequest req_out;
  ASSERT_TRUE(decode(parse_one(encode(req)), &req_out));
  EXPECT_EQ(req_out.session_id, 8u);

  StatsReply m;
  m.session_id = 8;
  m.generation = 4;
  m.fingerprint = 0xfeedull;
  m.batches = 10;
  m.repaired = 6;
  m.declined = 1;
  m.reproves = 2;
  m.verifies = 11;
  m.spot_sampled = 30;
  m.spot_skipped = 12;
  m.spot_escalations = 1;
  m.spot_miss_bound = 0.125;
  m.queue_depth = 2;
  StatsReply out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 8u);
  EXPECT_EQ(out.generation, 4u);
  EXPECT_EQ(out.fingerprint, 0xfeedull);
  EXPECT_EQ(out.batches, 10u);
  EXPECT_EQ(out.repaired, 6u);
  EXPECT_EQ(out.declined, 1u);
  EXPECT_EQ(out.reproves, 2u);
  EXPECT_EQ(out.verifies, 11u);
  EXPECT_EQ(out.spot_sampled, 30u);
  EXPECT_EQ(out.spot_skipped, 12u);
  EXPECT_EQ(out.spot_escalations, 1u);
  EXPECT_DOUBLE_EQ(out.spot_miss_bound, 0.125);
  EXPECT_EQ(out.queue_depth, 2u);
}

TEST(ProtocolRoundTrip, CloseAndClosed) {
  CloseRequest req{3};
  CloseRequest req_out;
  ASSERT_TRUE(decode(parse_one(encode(req)), &req_out));
  EXPECT_EQ(req_out.session_id, 3u);

  ClosedReply m{3, 40, 0xabcull};
  ClosedReply out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 3u);
  EXPECT_EQ(out.generation, 40u);
  EXPECT_EQ(out.fingerprint, 0xabcull);
}

TEST(ProtocolRoundTrip, OverloadedAndError) {
  OverloadedReply m{6, 64};
  OverloadedReply out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  EXPECT_EQ(out.session_id, 6u);
  EXPECT_EQ(out.queue_depth, 64u);

  ErrorReply err;
  err.code = ErrorCode::kUnknownSession;
  err.message = "unknown session";
  ErrorReply err_out;
  ASSERT_TRUE(decode(parse_one(encode(err)), &err_out));
  EXPECT_EQ(err_out.code, ErrorCode::kUnknownSession);
  EXPECT_EQ(err_out.message, "unknown session");
}

TEST(ProtocolRoundTrip, GeneratedGraphSurvivesTheWire) {
  SubmitGraphRequest m;
  m.graph_id = 1;
  m.graph = gen::petersen();
  SubmitGraphRequest out;
  ASSERT_TRUE(decode(parse_one(encode(m)), &out));
  expect_graph_eq(m.graph, out.graph);
}

// ---------------------------------------------------------------------------
// Parser mechanics.

TEST(FrameParser, ReassemblesFromSingleByteFeeds) {
  PollVerdictRequest m{1, 2};
  const std::vector<std::uint8_t> bytes = encode(m);
  FrameParser parser;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.feed(&bytes[i], 1);
    EXPECT_EQ(parser.next(&frame), DecodeStatus::kNeedMore) << i;
  }
  parser.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(parser.next(&frame), DecodeStatus::kOk);
  PollVerdictRequest out;
  ASSERT_TRUE(decode(frame, &out));
  EXPECT_EQ(out.session_id, 1u);
  EXPECT_EQ(out.ticket, 2u);
}

TEST(FrameParser, ManyFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto one = encode(PollVerdictRequest{i, i * 10});
    stream.insert(stream.end(), one.begin(), one.end());
  }
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  for (std::uint64_t i = 0; i < 5; ++i) {
    Frame frame;
    ASSERT_EQ(parser.next(&frame), DecodeStatus::kOk) << i;
    PollVerdictRequest out;
    ASSERT_TRUE(decode(frame, &out));
    EXPECT_EQ(out.session_id, i);
  }
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kNeedMore);
}

TEST(FrameParser, TruncatedLengthPrefixIsNeedMore) {
  // Two bytes of a length prefix are not an error, just incomplete.
  FrameParser parser;
  const std::uint8_t partial[2] = {0x10, 0x00};
  parser.feed(partial, sizeof partial);
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kNeedMore);
  EXPECT_EQ(parser.buffered(), 2u);
}

TEST(FrameParser, BadVersionSkipsExactlyThatFrame) {
  std::vector<std::uint8_t> bad = encode(PollVerdictRequest{1, 1});
  bad[4] = 99;  // version byte
  const std::vector<std::uint8_t> good = encode(PollVerdictRequest{2, 2});

  FrameParser parser;
  parser.feed(bad.data(), bad.size());
  parser.feed(good.data(), good.size());
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kBadVersion);
  ASSERT_EQ(parser.next(&frame), DecodeStatus::kOk);
  PollVerdictRequest out;
  ASSERT_TRUE(decode(frame, &out));
  EXPECT_EQ(out.session_id, 2u);
}

TEST(FrameParser, OversizedFrameDiscardedWithoutBuffering) {
  // A parser with a 64-byte cap sees a frame announcing 1000 bytes.  The
  // skip must not buffer the lie: buffered() stays at zero while the
  // announced bytes stream through, and the next real frame decodes.
  FrameParser parser(/*max_frame_bytes=*/64);
  std::vector<std::uint8_t> lie;
  WireWriter w(&lie);
  w.u32(1000);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kPollVerdict));
  parser.feed(lie.data(), lie.size());
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kOversized);
  EXPECT_EQ(parser.buffered(), 0u);

  // Stream the rest of the announced 1000 bytes in chunks; the parser
  // swallows them without producing anything.
  std::vector<std::uint8_t> junk(998, 0xab);
  parser.feed(junk.data(), 500);
  EXPECT_EQ(parser.buffered(), 0u);
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kNeedMore);
  parser.feed(junk.data(), 498);
  EXPECT_EQ(parser.buffered(), 0u);

  const std::vector<std::uint8_t> good = encode(PollVerdictRequest{7, 8});
  parser.feed(good.data(), good.size());
  ASSERT_EQ(parser.next(&frame), DecodeStatus::kOk);
  PollVerdictRequest out;
  ASSERT_TRUE(decode(frame, &out));
  EXPECT_EQ(out.session_id, 7u);
}

TEST(FrameParser, FullyBufferedOversizedFrameAlsoSkips) {
  FrameParser parser(/*max_frame_bytes=*/16);
  const std::vector<std::uint8_t> big =
      encode(PollVerdictRequest{1, 1});  // 22 bytes: 18-byte body > 16 cap
  const std::vector<std::uint8_t> good = encode(GetStatsRequest{4});
  parser.feed(big.data(), big.size());
  parser.feed(good.data(), good.size());
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kOversized);
  ASSERT_EQ(parser.next(&frame), DecodeStatus::kOk);
  GetStatsRequest out;
  ASSERT_TRUE(decode(frame, &out));
  EXPECT_EQ(out.session_id, 4u);
}

TEST(FrameParser, UnderLengthFrameWithLateBodyStaysInSync) {
  // The prefix announcing a 1-byte body arrives alone; the body byte
  // lands in a later feed.  That byte must be discarded, not parsed as
  // the start of the next length prefix.
  std::vector<std::uint8_t> prefix;
  WireWriter w(&prefix);
  w.u32(1);
  FrameParser parser;
  parser.feed(prefix.data(), prefix.size());
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kMalformed);

  const std::uint8_t late_body = 0x55;
  parser.feed(&late_body, 1);
  EXPECT_EQ(parser.buffered(), 0u);

  const std::vector<std::uint8_t> good = encode(GetStatsRequest{11});
  parser.feed(good.data(), good.size());
  ASSERT_EQ(parser.next(&frame), DecodeStatus::kOk);
  GetStatsRequest out;
  ASSERT_TRUE(decode(frame, &out));
  EXPECT_EQ(out.session_id, 11u);
}

TEST(FrameParser, UnderLengthFrameIsMalformed) {
  // length == 1 cannot hold version + type.
  std::vector<std::uint8_t> bad;
  WireWriter w(&bad);
  w.u32(1);
  w.u8(0x55);  // the announced single body byte
  const std::vector<std::uint8_t> good = encode(GetStatsRequest{9});
  FrameParser parser;
  parser.feed(bad.data(), bad.size());
  parser.feed(good.data(), good.size());
  Frame frame;
  EXPECT_EQ(parser.next(&frame), DecodeStatus::kMalformed);
  ASSERT_EQ(parser.next(&frame), DecodeStatus::kOk);
  GetStatsRequest out;
  ASSERT_TRUE(decode(frame, &out));
  EXPECT_EQ(out.session_id, 9u);
}

// ---------------------------------------------------------------------------
// Payload-level malformation: decode() must reject, never crash.

TEST(ProtocolDecode, RejectsWrongType) {
  const Frame frame = parse_one(encode(PollVerdictRequest{1, 2}));
  GetStatsRequest wrong;
  EXPECT_FALSE(decode(frame, &wrong));
}

TEST(ProtocolDecode, RejectsTruncatedPayload) {
  Frame frame = parse_one(encode(PollVerdictRequest{1, 2}));
  frame.payload.resize(frame.payload.size() - 1);
  PollVerdictRequest out;
  EXPECT_FALSE(decode(frame, &out));
}

TEST(ProtocolDecode, RejectsTrailingBytes) {
  Frame frame = parse_one(encode(PollVerdictRequest{1, 2}));
  frame.payload.push_back(0);
  PollVerdictRequest out;
  EXPECT_FALSE(decode(frame, &out));
}

TEST(ProtocolDecode, RejectsLyingGraphCounts) {
  // A graph header announcing 2^20 nodes inside a tiny payload must fail
  // before allocating node storage.
  std::vector<std::uint8_t> payload;
  WireWriter w(&payload);
  w.u64(1);          // graph_id
  w.u32(1u << 20);   // node count lie
  w.u32(0);          // edges
  Frame frame;
  frame.type = MsgType::kSubmitGraph;
  frame.payload = payload;
  SubmitGraphRequest out;
  EXPECT_FALSE(decode(frame, &out));
}

TEST(ProtocolDecode, RejectsLyingBatchCounts) {
  std::vector<std::uint8_t> payload;
  WireWriter w(&payload);
  w.u64(1);          // session_id
  w.u32(1u << 24);   // op count lie
  Frame frame;
  frame.type = MsgType::kApplyDeltas;
  frame.payload = payload;
  ApplyDeltasRequest out;
  EXPECT_FALSE(decode(frame, &out));
}

TEST(ProtocolDecode, RejectsInvalidOpKind) {
  MutationBatch batch;
  batch.set_node_label(0, 1);
  ApplyDeltasRequest m;
  m.session_id = 1;
  m.batch = batch;
  Frame frame = parse_one(encode(m));
  frame.payload[12] = 0xee;  // the op kind byte (after u64 id + u32 count)
  ApplyDeltasRequest out;
  EXPECT_FALSE(decode(frame, &out));
}

TEST(ProtocolDecode, RejectsInconsistentGraphTables) {
  // Duplicate node ids make Graph::add_node throw; the reader must latch
  // failure instead of leaking the exception.
  Graph dup;
  dup.add_node(1, 0);
  dup.add_node(2, 0);
  SubmitGraphRequest m;
  m.graph_id = 1;
  m.graph = dup;
  std::vector<std::uint8_t> bytes = encode(m);
  // Both node records live at fixed offsets: 6 header + 8 graph_id +
  // 8 counts; overwrite the second id (8 label bytes after the first) with
  // the first.
  const std::size_t first_id = 6 + 8 + 8;
  const std::size_t second_id = first_id + 16;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[second_id + i] = bytes[first_id + i];
  }
  SubmitGraphRequest out;
  EXPECT_FALSE(decode(parse_one(bytes), &out));
}

TEST(ProtocolDecode, WireReaderLatchesOverrun) {
  const std::uint8_t two[2] = {1, 2};
  WireReader r(two, sizeof two);
  EXPECT_EQ(r.u64(), 0u);  // overruns: latched zero
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays latched
  EXPECT_FALSE(r.exhausted());
}

TEST(ProtocolNames, CoverTheVocabulary) {
  EXPECT_STREQ(msg_type_name(MsgType::kSubmitGraph), "SUBMIT_GRAPH");
  EXPECT_STREQ(msg_type_name(MsgType::kOverloaded), "OVERLOADED");
  EXPECT_STREQ(msg_type_name(MsgType::kError), "ERROR");
  EXPECT_STREQ(msg_type_name(static_cast<MsgType>(0x7f)), "UNKNOWN");
}

}  // namespace
}  // namespace lcp::server
