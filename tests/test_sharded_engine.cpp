// ShardedEngine equivalence and isolation suite.
//
// The load-bearing property is bit-identity: on every (graph, proof,
// scheme) triple — honest, tampered, empty, composed — the sharded engine
// must produce the same verdict and the same ascending rejecting set as
// DirectEngine, for every shard count (including non-powers-of-two and
// k > n), every partitioner (including a deliberately boundary-heavy one),
// and both the content path and the tracker path.  On top of identity, the
// isolation claims: an interior-only batch wakes exactly one lane and
// moves no halo traffic; boundary churn triggers halo rebuilds and still
// matches DirectEngine on the final state.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/compose.hpp"
#include "core/engine.hpp"
#include "core/registry.hpp"
#include "core/session.hpp"
#include "core/sharded_engine.hpp"
#include "graph/generators.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

void expect_equal(const RunResult& expected, const RunResult& actual,
                  const std::string& label) {
  EXPECT_EQ(expected.all_accept, actual.all_accept) << label;
  EXPECT_EQ(expected.rejecting, actual.rejecting) << label;
}

/// Worst-case partition: node v to shard v % k, so on a path or cycle
/// every single edge crosses shards and every node carries a halo.
class StripedPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "striped"; }
  void bind(const Graph& g, int shards) override {
    (void)g;
    shards_ = shards;
  }
  int owner(const Graph& g, int v) const override {
    (void)g;
    return v % shards_;
  }

 private:
  int shards_ = 1;
};

std::vector<std::pair<std::string, Graph>> corpus_graphs() {
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("cycle9", gen::cycle(9));
  graphs.emplace_back("grid3x4", gen::grid(3, 4));
  graphs.emplace_back("petersen", gen::petersen());
  graphs.emplace_back("tree12", gen::random_tree(12, 3));
  graphs.emplace_back("conn12", gen::random_connected(12, 0.25, 7));
  // Possibly disconnected: shards must agree off the happy path too.
  graphs.emplace_back("er10", gen::random_graph(10, 0.3, 5));
  return graphs;
}

struct ProofCase {
  std::string label;
  Proof proof;
};

std::vector<ProofCase> proof_cases(const Scheme& scheme, const Graph& g) {
  std::vector<ProofCase> out;
  const auto honest = scheme.prove(g);
  if (honest.has_value()) {
    out.push_back({"honest", *honest});
    int i = 0;
    for (const Proof& tampered : tampered_variants(*honest, 3, 11)) {
      out.push_back({"tampered" + std::to_string(i++), tampered});
    }
  }
  out.push_back({"empty", Proof::empty(g.n())});
  return out;
}

void check_scheme_everywhere(const Scheme& scheme,
                             const std::vector<ShardedEngineOptions>& configs,
                             const std::vector<std::string>& config_names) {
  DirectEngine reference({/*cache_views=*/false});
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  for (const ShardedEngineOptions& options : configs) {
    engines.push_back(std::make_unique<ShardedEngine>(options));
  }
  for (auto& [glabel, g] : corpus_graphs()) {
    Graph graph = g;
    if (scheme.name() == "leader-election" && graph.n() > 0) {
      graph.set_label(graph.n() / 2, schemes::kLeaderFlag);
    }
    for (const ProofCase& pc : proof_cases(scheme, graph)) {
      const RunResult expected =
          reference.run(graph, pc.proof, scheme.verifier());
      for (std::size_t i = 0; i < engines.size(); ++i) {
        const std::string label = scheme.name() + "/" + glabel + "/" +
                                  pc.label + "/" + config_names[i];
        expect_equal(expected,
                     engines[i]->run(graph, pc.proof, scheme.verifier()),
                     label);
        // Second run: unchanged-state fast path must return the same.
        expect_equal(expected,
                     engines[i]->run(graph, pc.proof, scheme.verifier()),
                     label + "/repeat");
      }
    }
  }
}

std::vector<ShardedEngineOptions> standard_configs(
    std::vector<std::string>* names) {
  std::vector<ShardedEngineOptions> configs;
  for (int k : {1, 2, 4, 7}) {
    ShardedEngineOptions options;
    options.shards = k;
    configs.push_back(options);
    names->push_back("range" + std::to_string(k));
  }
  {
    ShardedEngineOptions options;
    options.shards = 3;
    options.partitioner = std::make_shared<HashPartitioner>();
    configs.push_back(options);
    names->push_back("hash3");
  }
  {
    ShardedEngineOptions options;
    options.shards = 4;
    options.partitioner = std::make_shared<StripedPartitioner>();
    configs.push_back(options);
    names->push_back("striped4");
  }
  return configs;
}

TEST(ShardedEquivalence, FullRegistryCorpus) {
  std::vector<std::string> names;
  const auto configs = standard_configs(&names);
  for (const std::string& scheme_name : builtin_registry().names()) {
    const auto scheme = builtin_registry().build(scheme_name);
    check_scheme_everywhere(*scheme, configs, names);
  }
}

TEST(ShardedEquivalence, ConjunctionScheme) {
  std::vector<std::string> names;
  const auto configs = standard_configs(&names);
  const auto conj =
      builtin_registry().build("leader-election & maximal-matching");
  check_scheme_everywhere(*conj, configs, names);
}

TEST(ShardedEquivalence, PaddedRadiusThree) {
  // radius_pad lifts the verifier horizon to 3: halos go three rounds
  // deep, crossing several stripe boundaries at once.
  std::vector<std::string> names;
  const auto configs = standard_configs(&names);
  const auto base = builtin_registry().build("bipartite");
  const auto padded = radius_pad(*base, 3);
  check_scheme_everywhere(*padded, configs, names);
}

TEST(ShardedEngine, HaloTrafficVisibleAndBounded) {
  const auto scheme = builtin_registry().build("bipartite");
  const Graph g = gen::cycle(32);
  const Proof p = *scheme->prove(g);

  ShardedEngineOptions lone;
  lone.shards = 1;
  ShardedEngine single(lone);
  ASSERT_TRUE(single.run(g, p, scheme->verifier()).all_accept);
  // One shard never has a fringe: zero ghost rows cross the transport.
  EXPECT_EQ(single.transport().stats().records, 0u);

  ShardedEngineOptions quad;
  quad.shards = 4;
  ShardedEngine sharded(quad);
  ASSERT_TRUE(sharded.run(g, p, scheme->verifier()).all_accept);
  const TransportStats stats = sharded.transport().stats();
  // A 32-cycle in 4 contiguous stripes at radius 1 has 8 boundary
  // endpoints: each stripe imports exactly its two fringe neighbours.
  EXPECT_EQ(stats.records, 8u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ShardedTracker, InteriorChurnWakesOneShard) {
  const auto scheme = builtin_registry().build("leader-election");
  Graph g = gen::cycle(64);
  g.set_label(3, schemes::kLeaderFlag);
  Proof p = *scheme->prove(g);
  const int radius = scheme->verifier().radius();
  DeltaTracker tracker(g, p, radius);

  ShardedEngineOptions options;
  options.shards = 4;
  ShardedEngine engine(options);
  engine.attach_tracker(&tracker);
  DirectEngine reference({/*cache_views=*/false});

  ASSERT_TRUE(engine.run(g, p, scheme->verifier()).all_accept);
  const std::uint64_t records_before = engine.transport().stats().records;

  // Nodes 24..26 sit deep inside shard 1's stripe [16, 32); at radius 1
  // nothing within reach of another shard changes.
  MutationBatch batch;
  batch.remove_edge(24, 25);
  batch.add_edge(24, 25);
  batch.set_proof_label(26, p.labels[26]);
  tracker.apply(batch);

  const auto& stats = engine.stats();
  const std::uint64_t woken_before = stats.shards_woken;
  expect_equal(reference.run(g, p, scheme->verifier()),
               engine.run(g, p, scheme->verifier()), "interior-churn");
  EXPECT_EQ(stats.shards_woken - woken_before, 1u);
  EXPECT_EQ(stats.halo_rebuilds, 0u);
  // Interior churn ships nothing: no requests, no records, no patches.
  EXPECT_EQ(engine.transport().stats().records, records_before);
}

TEST(ShardedTracker, BoundaryChurnRebuildsHalosAndMatches) {
  const auto scheme = builtin_registry().build("bipartite");
  Graph g = gen::cycle(40);
  Proof p = *scheme->prove(g);
  const int radius = scheme->verifier().radius();
  DeltaTracker tracker(g, p, radius);

  ShardedEngineOptions options;
  options.shards = 4;
  ShardedEngine engine(options);
  engine.attach_tracker(&tracker);
  DirectEngine reference({/*cache_views=*/false});

  ASSERT_TRUE(engine.run(g, p, scheme->verifier()).all_accept);

  // A chord across the stripe boundary at node 10: both shard 0 and
  // shard 1 see their fringes move.
  MutationBatch batch;
  batch.add_edge(8, 12);
  tracker.apply(batch);
  expect_equal(reference.run(g, p, scheme->verifier()),
               engine.run(g, p, scheme->verifier()), "boundary-add");
  EXPECT_GE(engine.stats().halo_rebuilds, 1u);

  MutationBatch undo;
  undo.remove_edge(8, 12);
  tracker.apply(undo);
  expect_equal(reference.run(g, p, scheme->verifier()),
               engine.run(g, p, scheme->verifier()), "boundary-remove");
}

TEST(ShardedTracker, NodeGrowthAcrossShards) {
  const auto scheme = builtin_registry().build("acyclic");
  Graph g = gen::random_tree(24, 9);
  auto honest = scheme->prove(g);
  ASSERT_TRUE(honest.has_value());
  Proof p = std::move(*honest);
  const int radius = scheme->verifier().radius();
  DeltaTracker tracker(g, p, radius);

  ShardedEngineOptions options;
  options.shards = 3;
  ShardedEngine engine(options);
  engine.attach_tracker(&tracker);
  DirectEngine reference({/*cache_views=*/false});

  (void)engine.run(g, p, scheme->verifier());
  for (int round = 0; round < 4; ++round) {
    MutationBatch batch;
    batch.add_node(1000 + round);
    batch.add_edge(g.n(), 2 * round);  // attach the new node
    tracker.apply(batch);
    expect_equal(reference.run(g, p, scheme->verifier()),
                 engine.run(g, p, scheme->verifier()),
                 "growth-round-" + std::to_string(round));
  }
}

TEST(ShardedTracker, FuzzAgainstDirect) {
  // Random structural + proof churn through a tracker, every round
  // cross-checked against a fresh DirectEngine on the final state.  Both a
  // contiguous and a boundary-heavy partition run the same trace.
  const auto scheme = builtin_registry().build("bipartite");
  const int radius = scheme->verifier().radius();
  // Start from a tree so an honest proof exists; churn is free to break
  // bipartiteness later (engines are compared, not asserted accepting).
  Graph g = gen::random_tree(48, 17);
  Proof p = *scheme->prove(g);
  DeltaTracker tracker(g, p, radius);

  ShardedEngineOptions range_options;
  range_options.shards = 3;
  ShardedEngine range_engine(range_options);
  range_engine.attach_tracker(&tracker);

  ShardedEngineOptions striped_options;
  striped_options.shards = 4;
  striped_options.partitioner = std::make_shared<StripedPartitioner>();
  ShardedEngine striped_engine(striped_options);
  striped_engine.attach_tracker(&tracker);

  DirectEngine reference({/*cache_views=*/false});
  std::mt19937 rng(1234);

  (void)range_engine.run(g, p, scheme->verifier());
  (void)striped_engine.run(g, p, scheme->verifier());
  for (int round = 0; round < 40; ++round) {
    MutationBatch batch;
    // One structural op per batch (double-mutating the same edge inside a
    // batch is a tracker error), plus a couple of label/proof flips.
    const int u = static_cast<int>(rng() % g.n());
    const int v = static_cast<int>(rng() % g.n());
    switch (rng() % 5) {
      case 0:
        if (u != v && !g.has_edge(u, v)) batch.add_edge(u, v);
        break;
      case 1:
        if (g.has_edge(u, v)) batch.remove_edge(u, v);
        break;
      case 2:
        batch.set_node_label(u, rng() % 3);
        break;
      case 3:
        if (round % 7 == 0) {
          batch.add_node(5000 + round);
          batch.add_edge(g.n(), u);
        }
        break;
      case 4:
        break;  // proof-only round
    }
    const int flips = static_cast<int>(rng() % 3);
    for (int i = 0; i < flips; ++i) {
      BitString bits;
      bits.append_bit(rng() % 2 != 0);
      batch.set_proof_label(static_cast<int>(rng() % g.n()),
                            std::move(bits));
    }
    if (batch.empty()) continue;
    tracker.apply(batch);
    const RunResult expected = reference.run(g, p, scheme->verifier());
    expect_equal(expected, range_engine.run(g, p, scheme->verifier()),
                 "fuzz-range-" + std::to_string(round));
    expect_equal(expected, striped_engine.run(g, p, scheme->verifier()),
                 "fuzz-striped-" + std::to_string(round));
  }
}

TEST(ShardedFactory, ParsesSpecs) {
  const auto scheme = builtin_registry().build("bipartite");
  const Graph g = gen::cycle(8);
  const Proof p = *scheme->prove(g);
  for (const char* spec : {"sharded", "sharded:1", "sharded:4",
                           "sharded:2:hash", "sharded:3:range"}) {
    const auto engine = make_engine(spec);
    ASSERT_NE(engine, nullptr) << spec;
    EXPECT_EQ(engine->name(), "sharded") << spec;
    EXPECT_TRUE(engine->run(g, p, scheme->verifier()).all_accept) << spec;
  }
  auto engine = make_engine("sharded:6:hash");
  auto* sharded = dynamic_cast<ShardedEngine*>(engine.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shard_count(), 6);
  (void)sharded->run(g, p, scheme->verifier());
  EXPECT_EQ(sharded->partitioner().name(), "hash");

  EXPECT_THROW(make_engine("sharded:"), std::invalid_argument);
  EXPECT_THROW(make_engine("sharded:0"), std::invalid_argument);
  EXPECT_THROW(make_engine("sharded:x"), std::invalid_argument);
  EXPECT_THROW(make_engine("sharded:2:mod"), std::invalid_argument);
  EXPECT_THROW(make_engine("sharded:99999"), std::invalid_argument);
}

TEST(ShardedSession, ComposesWithMaintainers) {
  Graph g = gen::random_connected(30, 0.15, 3);
  g.set_label(0, schemes::kLeaderFlag);
  auto session = VerificationSession::on(std::move(g))
                     .scheme("leader-election")
                     .engine("sharded:3")
                     .maintain(true)
                     .build();
  ASSERT_TRUE(session.verify().all_accept);
  int added = 0;
  for (int round = 0; round < 120 && added < 5; ++round) {
    const int u = round % session.graph().n();
    const int v = (round * 7 + 11) % session.graph().n();
    if (u == v || session.graph().has_edge(u, v)) continue;
    MutationBatch batch;
    batch.add_edge(u, v);
    EXPECT_TRUE(session.apply(batch).all_accept) << round;
    ++added;
  }
  EXPECT_EQ(added, 5);
  EXPECT_TRUE(session.verify().all_accept);
}

TEST(ShardedSession, ConjunctionSchemeThroughSession) {
  Graph g = gen::cycle(24);
  auto session = VerificationSession::on(std::move(g))
                     .scheme("bipartite & even-n")
                     .engine("sharded:4")
                     .build();
  EXPECT_TRUE(session.verify().all_accept);
  MutationBatch batch;
  batch.add_edge(0, 12);  // chord: still bipartite (even cycle halves)
  const RunResult after = session.apply(batch);
  DirectEngine reference({/*cache_views=*/false});
  expect_equal(reference.run(session.graph(), session.proof(),
                             session.scheme().verifier()),
               after, "session-conjunction");
}

TEST(ShardedEngine, OverflowFallsBackToPlainSweeps) {
  // A tiny ball budget forces the overflow path; verdicts must not change.
  const auto scheme = builtin_registry().build("bipartite");
  const Graph g = gen::complete_bipartite(6, 6);
  const Proof p = *scheme->prove(g);
  ShardedEngineOptions options;
  options.shards = 3;
  options.max_cached_ball_nodes = 8;
  ShardedEngine tiny(options);
  DirectEngine reference({/*cache_views=*/false});
  for (int round = 0; round < 3; ++round) {
    expect_equal(reference.run(g, p, scheme->verifier()),
                 tiny.run(g, p, scheme->verifier()),
                 "overflow-round-" + std::to_string(round));
  }
}

}  // namespace
}  // namespace lcp
