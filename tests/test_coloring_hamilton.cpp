// Exact colouring and Hamiltonicity solvers (ground truth for the
// chromatic and Hamiltonian schemes).
#include <gtest/gtest.h>

#include "algo/coloring.hpp"
#include "algo/hamilton.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

TEST(Coloring, KnownChromaticNumbers) {
  EXPECT_EQ(chromatic_number(gen::complete(5)), 5);
  EXPECT_EQ(chromatic_number(gen::cycle(6)), 2);
  EXPECT_EQ(chromatic_number(gen::cycle(7)), 3);
  EXPECT_EQ(chromatic_number(gen::petersen()), 3);
  EXPECT_EQ(chromatic_number(gen::grid(3, 3)), 2);
  EXPECT_EQ(chromatic_number(gen::star(8)), 2);
}

TEST(Coloring, SingleNodeAndEmpty) {
  Graph single;
  single.add_node(1);
  EXPECT_EQ(chromatic_number(single), 1);
  EXPECT_EQ(chromatic_number(Graph{}), 0);
}

TEST(Coloring, ColoringIsProperWhenFound) {
  for (int k = 3; k <= 5; ++k) {
    const Graph g = gen::complete(k);
    const auto colors = k_coloring(g, k);
    ASSERT_TRUE(colors.has_value());
    EXPECT_TRUE(is_proper_coloring(g, *colors));
    EXPECT_FALSE(k_coloring(g, k - 1).has_value());
  }
}

TEST(Coloring, WheelParity) {
  // Wheel over an even cycle is 3-chromatic; over an odd cycle 4-chromatic.
  auto wheel = [](int spokes) {
    Graph g = gen::cycle(spokes);
    const int hub = g.add_node(100);
    for (int v = 0; v < spokes; ++v) g.add_edge(hub, v);
    return g;
  };
  EXPECT_EQ(chromatic_number(wheel(6)), 3);
  EXPECT_EQ(chromatic_number(wheel(5)), 4);
}

TEST(Hamilton, CycleGraphsAreHamiltonian) {
  for (int n : {3, 5, 8}) {
    const auto cycle = hamiltonian_cycle(gen::cycle(n));
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(static_cast<int>(cycle->size()), n);
  }
}

TEST(Hamilton, PetersenHasNoHamiltonianCycleButAPath) {
  const Graph g = gen::petersen();
  EXPECT_FALSE(hamiltonian_cycle(g).has_value());
  EXPECT_TRUE(hamiltonian_path(g).has_value());
}

TEST(Hamilton, HypercubeIsHamiltonian) {
  const auto cycle = hamiltonian_cycle(gen::hypercube(3));
  ASSERT_TRUE(cycle.has_value());
  const Graph g = gen::hypercube(3);
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    EXPECT_TRUE(g.has_edge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
  }
}

TEST(Hamilton, StarHasNoHamiltonianPathBeyondThreeNodes) {
  EXPECT_FALSE(hamiltonian_path(gen::star(5)).has_value());
  EXPECT_TRUE(hamiltonian_path(gen::star(3)).has_value());  // P3
}

TEST(Hamilton, GridPathExists) {
  const auto path = hamiltonian_path(gen::grid(3, 3));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 9u);
  // All distinct.
  std::vector<int> sorted = *path;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Hamilton, MaskValidators) {
  Graph g = gen::cycle(5);
  std::vector<bool> all(static_cast<std::size_t>(g.m()), true);
  EXPECT_TRUE(is_hamiltonian_cycle(g, all));
  std::vector<bool> missing = all;
  missing[0] = false;
  EXPECT_FALSE(is_hamiltonian_cycle(g, missing));
  EXPECT_TRUE(is_hamiltonian_path(g, missing));
}

TEST(Hamilton, TwoTrianglesMaskIsNotOneCycle) {
  // Two triangles sharing a node cannot be a Hamiltonian cycle mask.
  Graph g;
  for (int i = 1; i <= 5; ++i) g.add_node(static_cast<NodeId>(i));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  std::vector<bool> all(static_cast<std::size_t>(g.m()), true);
  EXPECT_FALSE(is_hamiltonian_cycle(g, all));  // node 2 has degree 4
}

}  // namespace
}  // namespace lcp
