// Table 1(b) matching/problem schemes (Section 2.3): maximal matching
// (LCP(0)), MIS (LCL), Konig maximum matching (LCP(1)), max-weight
// matching with LP duals (O(log W)).
#include <gtest/gtest.h>

#include <random>

#include "algo/bipartite.hpp"
#include "algo/matching.hpp"
#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "schemes/matching_schemes.hpp"

namespace lcp::schemes {
namespace {

Graph with_matching_labels(Graph g, const std::vector<bool>& mask,
                           std::uint64_t bit) {
  for (int e = 0; e < g.m(); ++e) {
    g.set_edge_label(e, mask[static_cast<std::size_t>(e)] ? bit : 0);
  }
  return g;
}

TEST(MaximalMatching, GreedySolutionsAccepted) {
  const MaximalMatchingScheme scheme;
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    Graph g = gen::random_connected(10, 0.3, seed);
    g = with_matching_labels(std::move(g), greedy_maximal_matching(g),
                             MaximalMatchingScheme::kMatchedBit);
    EXPECT_TRUE(scheme.holds(g));
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << seed;
    EXPECT_EQ(scheme.prove(g)->size_bits(), 0);
  }
}

TEST(MaximalMatching, NonMaximalRejectedWithoutProof) {
  const MaximalMatchingScheme scheme;
  const Graph g = gen::path(4);  // no labels: empty matching, not maximal
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_TRUE(rejected(g, Proof::empty(4), scheme.verifier()));
}

TEST(MaximalMatching, ConflictingEdgesRejected) {
  const MaximalMatchingScheme scheme;
  Graph g = gen::path(3);
  g.set_edge_label(0, 1);
  g.set_edge_label(1, 1);  // node 1 doubly matched
  EXPECT_TRUE(rejected(g, Proof::empty(3), scheme.verifier()));
}

TEST(Mis, GreedyMisAccepted) {
  const MaximalIndependentSetScheme scheme;
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    Graph g = gen::random_connected(10, 0.3, seed);
    // Greedy MIS by index order.
    for (int v = 0; v < g.n(); ++v) {
      bool blocked = false;
      for (const HalfEdge& h : g.neighbors(v)) {
        if (g.label(h.to) == MaximalIndependentSetScheme::kInSetLabel) {
          blocked = true;
        }
      }
      if (!blocked) g.set_label(v, MaximalIndependentSetScheme::kInSetLabel);
    }
    EXPECT_TRUE(scheme.holds(g));
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << seed;
  }
}

TEST(Mis, ViolationsRejected) {
  const MaximalIndependentSetScheme scheme;
  Graph dependent = gen::path(3);
  dependent.set_label(0, 1);
  dependent.set_label(1, 1);  // adjacent pair
  EXPECT_TRUE(rejected(dependent, Proof::empty(3), scheme.verifier()));
  Graph not_maximal = gen::path(3);  // empty set
  EXPECT_TRUE(rejected(not_maximal, Proof::empty(3), scheme.verifier()));
}

TEST(MaxMatchingBipartite, KonigCertificatesAccepted) {
  const MaxMatchingBipartiteScheme scheme;
  for (std::uint32_t seed = 0; seed < 25; ++seed) {
    Graph g = gen::random_graph(9, 0.35, seed);
    const auto side = two_coloring(g);
    if (!side.has_value()) continue;
    const auto mates = max_bipartite_matching(g, *side);
    std::vector<bool> mask(static_cast<std::size_t>(g.m()), false);
    for (int e = 0; e < g.m(); ++e) {
      mask[static_cast<std::size_t>(e)] =
          mates[static_cast<std::size_t>(g.edge_u(e))] == g.edge_v(e);
    }
    g = with_matching_labels(std::move(g), mask,
                             MaxMatchingBipartiteScheme::kMatchedBit);
    EXPECT_TRUE(scheme.holds(g)) << seed;
    EXPECT_TRUE(scheme_accepts_own_proof(scheme, g)) << seed;
    EXPECT_LE(scheme.prove(g)->size_bits(), 1);
  }
}

TEST(MaxMatchingBipartite, SubOptimalMatchingsHaveNoProofAndFailTampers) {
  const MaxMatchingBipartiteScheme scheme;
  // P4 with only the middle edge: maximal but not maximum.
  Graph g = gen::path(4);
  g.set_edge_label(1, MaxMatchingBipartiteScheme::kMatchedBit);
  EXPECT_FALSE(scheme.holds(g));
  EXPECT_FALSE(exists_accepted_proof(g, scheme.verifier(), 1));
}

TEST(MaxMatchingBipartite, ExhaustiveCompletenessOnTinyInstance) {
  Graph g = gen::path(4);
  g.set_edge_label(0, MaxMatchingBipartiteScheme::kMatchedBit);
  g.set_edge_label(2, MaxMatchingBipartiteScheme::kMatchedBit);
  const MaxMatchingBipartiteScheme scheme;
  EXPECT_TRUE(scheme.holds(g));
  EXPECT_TRUE(exists_accepted_proof(g, scheme.verifier(), 1));
}

class MaxWeightSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MaxWeightSweep, OptimalSolutionsCertifiedSuboptimalRejected) {
  const std::uint32_t seed = GetParam();
  std::mt19937 rng(seed);
  Graph g = gen::random_graph(8, 0.4, seed);
  const auto side = two_coloring(g);
  if (!side.has_value() || g.m() == 0) GTEST_SKIP();
  std::uniform_int_distribution<int> weight(0, 7);
  for (int e = 0; e < g.m(); ++e) g.set_edge_weight(e, weight(rng));

  std::vector<bool> best_mask;
  max_weight_matching_bruteforce(g, &best_mask);
  Graph yes = with_matching_labels(g, best_mask,
                                   MaxWeightMatchingScheme::kMatchedBit);
  const MaxWeightMatchingScheme scheme(7);
  EXPECT_TRUE(scheme.holds(yes));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, yes));
  EXPECT_LE(scheme.prove(yes)->size_bits(), 3);  // log W bits

  // Remove one matched edge with positive weight: strictly suboptimal.
  int drop = -1;
  for (int e = 0; e < g.m(); ++e) {
    if (best_mask[static_cast<std::size_t>(e)] && g.edge_weight(e) > 0) {
      drop = e;
    }
  }
  if (drop < 0) GTEST_SKIP();
  std::vector<bool> weak = best_mask;
  weak[static_cast<std::size_t>(drop)] = false;
  Graph no = with_matching_labels(g, weak,
                                  MaxWeightMatchingScheme::kMatchedBit);
  EXPECT_FALSE(scheme.holds(no));
  // The honest dual proof of the yes-instance must NOT certify it...
  const auto dual_proof = scheme.prove(yes);
  EXPECT_TRUE(rejected(no, *dual_proof, scheme.verifier()));
  // ...and neither do its structured corruptions.
  for (const Proof& p : tampered_variants(*dual_proof, 30, seed)) {
    EXPECT_TRUE(rejected(no, p, scheme.verifier()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaxWeightSweep, ::testing::Range(0u, 25u));

TEST(MaxWeight, WeightBeyondBoundIsNoInstance) {
  Graph g = gen::path(2);
  g.set_edge_weight(0, 100);
  const MaxWeightMatchingScheme scheme(7);
  EXPECT_FALSE(scheme.holds(g));
}

}  // namespace
}  // namespace lcp::schemes
