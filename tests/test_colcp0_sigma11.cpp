// The coLCP(0) adapter (Section 7.3) and the monadic Sigma11 fragment
// (Section 7.5).
#include <gtest/gtest.h>

#include <memory>

#include "core/certificates.hpp"
#include "core/checker.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "logic/sigma11.hpp"
#include "schemes/colcp0.hpp"
#include "schemes/lcp0.hpp"

namespace lcp {
namespace {

using schemes::CoLcp0Scheme;
using schemes::EulerianScheme;
using schemes::LineGraphScheme;

TEST(CoLcp0, NonEulerianCertified) {
  const CoLcp0Scheme scheme(std::make_shared<EulerianScheme>());
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::path(5)));
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::star(6)));
  EXPECT_FALSE(scheme.holds(gen::cycle(6)));  // Eulerian: complement false
  EXPECT_FALSE(scheme.prove(gen::cycle(6)).has_value());
}

TEST(CoLcp0, EulerianYesInstancesRejectTampers) {
  const CoLcp0Scheme scheme(std::make_shared<EulerianScheme>());
  // A cycle IS Eulerian, so "non-Eulerian" is false: every adversarial
  // proof must fail (the root would have to reject, but it accepts).
  const Graph g = gen::cycle(5);
  const auto honest = scheme.prove(gen::path(5));
  ASSERT_TRUE(honest.has_value());
  Proof transplanted = Proof::empty(5);
  for (int v = 0; v < 5; ++v) {
    transplanted.labels[static_cast<std::size_t>(v)] =
        honest->labels[static_cast<std::size_t>(v)];
  }
  EXPECT_TRUE(rejected(g, transplanted, scheme.verifier()));
  for (const Proof& p : tampered_variants(*honest, 40, 17)) {
    Proof q = Proof::empty(5);
    for (int v = 0; v < 5; ++v) {
      q.labels[static_cast<std::size_t>(v)] =
          p.labels[static_cast<std::size_t>(v)];
    }
    EXPECT_TRUE(rejected(g, q, scheme.verifier()));
  }
}

TEST(CoLcp0, NonLineGraphsCertified) {
  const CoLcp0Scheme scheme(std::make_shared<LineGraphScheme>());
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, gen::star(4)));  // the claw
  Graph g = gen::cycle(9);
  const int leaf1 = g.add_node(100);
  const int leaf2 = g.add_node(101);
  g.add_edge(0, leaf1);
  g.add_edge(0, leaf2);  // claw at node 0
  EXPECT_TRUE(scheme_accepts_own_proof(scheme, g));
}

TEST(CoLcp0, ProofSizeIsLogarithmic) {
  const CoLcp0Scheme scheme(std::make_shared<EulerianScheme>());
  const int s = scheme.prove(gen::path(8))->size_bits();
  const int l = scheme.prove(gen::path(128))->size_bits();
  EXPECT_LT(l, 2 * s);
}

// ------------------------------------------------------------- sigma11 --

using logic::Assignment;
using logic::evaluate_global;
using logic::exists_satisfying_assignment;
using logic::f_adj;
using logic::f_and;
using logic::f_exists;
using logic::f_forall;
using logic::f_iff;
using logic::f_implies;
using logic::f_in_set;
using logic::f_not;
using logic::f_witness;
using logic::FormulaPtr;

TEST(Sigma11Evaluator, TwoColorFormulaMatchesBipartiteness) {
  const FormulaPtr phi = f_forall(
      1, f_implies(f_adj(0, 1), f_not(f_iff(f_in_set(0, 0), f_in_set(0, 1)))));
  EXPECT_TRUE(exists_satisfying_assignment(*phi, gen::cycle(4), 1));
  EXPECT_FALSE(exists_satisfying_assignment(*phi, gen::cycle(5), 1));
  EXPECT_TRUE(exists_satisfying_assignment(*phi, gen::path(5), 1));
}

TEST(Sigma11Evaluator, GlobalEvaluationUsesWitness) {
  // "every node is adjacent to the witness or is the witness".
  const FormulaPtr phi = f_exists(1, f_witness(1));
  Assignment a;
  a.witness = 0;
  EXPECT_TRUE(evaluate_global(*phi, gen::star(5), a));
  a.witness = 1;  // a leaf does not dominate the other leaves
  EXPECT_FALSE(evaluate_global(*phi, gen::star(5), a));
}

TEST(Sigma11Scheme, TwoColorableAcceptsBipartiteConnected) {
  const auto scheme = logic::make_sigma11_two_colorable_scheme();
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::cycle(6)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::grid(3, 4)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::random_tree(10, 4)));
  EXPECT_FALSE(scheme->holds(gen::cycle(5)));
  EXPECT_FALSE(scheme->prove(gen::petersen()).has_value());
}

TEST(Sigma11Scheme, TwoColorableRejectsTampersOnOddCycles) {
  const auto scheme = logic::make_sigma11_two_colorable_scheme();
  const auto honest = scheme->prove(gen::cycle(6));
  ASSERT_TRUE(honest.has_value());
  // C6 proof cut down to C5.
  Proof cut = Proof::empty(5);
  for (int v = 0; v < 5; ++v) {
    cut.labels[static_cast<std::size_t>(v)] =
        honest->labels[static_cast<std::size_t>(v)];
  }
  EXPECT_TRUE(rejected(gen::cycle(5), cut, scheme->verifier()));
}

TEST(Sigma11Scheme, UniversalNodeWitnessed) {
  const auto scheme = logic::make_sigma11_universal_node_scheme();
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::star(6)));
  EXPECT_TRUE(scheme_accepts_own_proof(*scheme, gen::complete(4)));
  EXPECT_FALSE(scheme->holds(gen::cycle(6)));
  // Moving the witness bit to a non-universal node must be caught.
  const Graph g = gen::star(6);
  const auto honest = scheme->prove(g);
  ASSERT_TRUE(honest.has_value());
  for (const Proof& p : tampered_variants(*honest, 50, 23)) {
    const bool ok = default_engine().run(g, p, scheme->verifier()).all_accept;
    if (ok) {
      // Acceptable only if it is still a genuinely valid proof; for this
      // scheme the witness must sit at the hub, so tampers that moved the
      // root/witness must have been rejected.  We simply require: accepted
      // implies the hub keeps both root and witness bits.
      BitReader r(p.labels[0]);
      const auto cert = read_tree_cert(r);
      ASSERT_TRUE(cert.has_value());
      EXPECT_TRUE(cert_says_root(*cert));
      EXPECT_TRUE(r.read_bit());  // witness bit
    }
  }
}

TEST(Sigma11Scheme, ProofSizeLogarithmicPlusConstant) {
  const auto scheme = logic::make_sigma11_two_colorable_scheme();
  const int small = scheme->prove(gen::cycle(8))->size_bits();
  const int large = scheme->prove(gen::cycle(128))->size_bits();
  EXPECT_LT(large, 2 * small);
}

}  // namespace
}  // namespace lcp
