// The definitional check (Section 2.2): for tiny instances we can decide
// the *actual* nondeterministic semantics by enumerating every proof:
//
//     G in P  <=>  exists P with |P| <= s such that all nodes accept.
//
// This validates completeness AND soundness of a scheme simultaneously,
// with no reliance on the scheme's own prover.  Instances are tiny (the
// search is exponential), but they cover both parities, both verdicts,
// and structurally distinct graphs.
#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "graph/generators.hpp"
#include "schemes/lcp0.hpp"
#include "schemes/lcp_const.hpp"
#include "schemes/matching_schemes.hpp"

namespace lcp::schemes {
namespace {

struct SemanticsCase {
  std::string name;
  Graph graph;
  bool expect_member;
};

class BipartiteSemantics : public ::testing::TestWithParam<int> {};

TEST_P(BipartiteSemantics, ExistsProofIffBipartite) {
  const int n = GetParam();
  const BipartiteScheme scheme;
  const Graph g = gen::cycle(n);
  EXPECT_EQ(exists_accepted_proof(g, scheme.verifier(), 1),
            scheme.holds(g));
}

INSTANTIATE_TEST_SUITE_P(Cycles, BipartiteSemantics,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

TEST(ExhaustiveSemantics, BipartiteOnStructuredGraphs) {
  const BipartiteScheme scheme;
  std::vector<SemanticsCase> cases;
  cases.push_back({"path5", gen::path(5), true});
  cases.push_back({"star5", gen::star(5), true});
  cases.push_back({"K4", gen::complete(4), false});
  cases.push_back({"K23", gen::complete_bipartite(2, 3), true});
  cases.push_back({"triangle+tail", gen::from_edges(5, {{0, 1},
                                                        {1, 2},
                                                        {2, 0},
                                                        {2, 3},
                                                        {3, 4}}),
                   false});
  for (const auto& c : cases) {
    EXPECT_EQ(exists_accepted_proof(c.graph, scheme.verifier(), 1),
              c.expect_member)
        << c.name;
    EXPECT_EQ(scheme.holds(c.graph), c.expect_member) << c.name;
  }
}

TEST(ExhaustiveSemantics, EulerianNeedsNoProofEver) {
  // LCP(0): the empty proof decides; extra bits must never flip a no into
  // a yes.
  const EulerianScheme scheme;
  for (const auto& [g, member] :
       std::vector<std::pair<Graph, bool>>{{gen::cycle(4), true},
                                           {gen::path(4), false},
                                           {gen::complete(5), true},
                                           {gen::star(4), false}}) {
    EXPECT_EQ(exists_accepted_proof(g, scheme.verifier(), 2), member);
  }
}

TEST(ExhaustiveSemantics, StReachability) {
  const StReachabilityScheme scheme;
  auto mark = [](Graph g, int s, int t) {
    g.set_label(s, kSourceLabel);
    g.set_label(t, kTargetLabel);
    return g;
  };
  // Connected: a proof exists.
  EXPECT_TRUE(exists_accepted_proof(mark(gen::path(5), 0, 4),
                                    scheme.verifier(), 1));
  // Disconnected: no proof of any size-1 labelling works.
  EXPECT_FALSE(exists_accepted_proof(
      mark(gen::disjoint_union(gen::path(2), gen::path(3)), 0, 3),
      scheme.verifier(), 1));
  // Same component but s = t branch ends: cycle reachability.
  EXPECT_TRUE(exists_accepted_proof(mark(gen::cycle(6), 0, 3),
                                    scheme.verifier(), 1));
}

TEST(ExhaustiveSemantics, EvenCycleBothParities) {
  const EvenCycleScheme scheme;
  EXPECT_TRUE(exists_accepted_proof(gen::cycle(4), scheme.verifier(), 1));
  EXPECT_TRUE(exists_accepted_proof(gen::cycle(6), scheme.verifier(), 1));
  EXPECT_FALSE(exists_accepted_proof(gen::cycle(5), scheme.verifier(), 1));
  EXPECT_FALSE(exists_accepted_proof(gen::cycle(7), scheme.verifier(), 1));
}

TEST(ExhaustiveSemantics, KonigCoverExistsIffMaximum) {
  const MaxMatchingBipartiteScheme scheme;
  // C6 with a perfect matching: maximum.
  Graph perfect = gen::cycle(6);
  for (int i = 0; i < 6; i += 2) {
    perfect.set_edge_label(perfect.edge_index(i, i + 1),
                           MaxMatchingBipartiteScheme::kMatchedBit);
  }
  EXPECT_TRUE(exists_accepted_proof(perfect, scheme.verifier(), 1));
  // C6 with a single edge: valid matching, not maximum.
  Graph single = gen::cycle(6);
  single.set_edge_label(0, MaxMatchingBipartiteScheme::kMatchedBit);
  EXPECT_FALSE(exists_accepted_proof(single, scheme.verifier(), 1));
  // C6 with two conflicting edges: not even a matching.
  Graph broken = gen::cycle(6);
  broken.set_edge_label(0, MaxMatchingBipartiteScheme::kMatchedBit);
  broken.set_edge_label(1, MaxMatchingBipartiteScheme::kMatchedBit);
  EXPECT_FALSE(exists_accepted_proof(broken, scheme.verifier(), 1));
}

TEST(ExhaustiveSemantics, MaxWeightDualExistsIffOptimal) {
  // Tiny weighted path, W = 3: proofs are 2 bits per node.
  const MaxWeightMatchingScheme scheme(3);
  Graph g = gen::path(3);
  g.set_edge_weight(0, 3);
  g.set_edge_weight(1, 2);
  // Optimal: take edge 0 (weight 3).
  Graph yes = g;
  yes.set_edge_label(0, MaxWeightMatchingScheme::kMatchedBit);
  EXPECT_TRUE(exists_accepted_proof(yes, scheme.verifier(), 2));
  // Suboptimal: take edge 1 (weight 2).
  Graph no = g;
  no.set_edge_label(1, MaxWeightMatchingScheme::kMatchedBit);
  EXPECT_FALSE(exists_accepted_proof(no, scheme.verifier(), 2));
}

}  // namespace
}  // namespace lcp::schemes
