// Pins the InProcessTransport queue-depth accounting and its derived
// gauges: queue_depth() is the live mailbox total, max_queue_depth() the
// high-water mark since construction (surviving drains and reset()), and
// register_transport_metrics adapts both — plus the traffic counters —
// into a MetricRegistry under a caller-chosen prefix.
#include <gtest/gtest.h>

#include <memory>

#include "core/shard_transport.hpp"
#include "obs/metrics.hpp"

namespace lcp {
namespace {

HaloMessage request(int from, int to, std::vector<int> hosts) {
  HaloMessage m;
  m.kind = HaloMessage::Kind::kRequest;
  m.from = from;
  m.to = to;
  m.requests = std::move(hosts);
  return m;
}

TEST(TransportDepth, DepthTracksMailboxesAndHighWaterSurvivesDrain) {
  InProcessTransport transport;
  transport.reset(3);
  EXPECT_EQ(transport.queue_depth(), 0u);
  EXPECT_EQ(transport.max_queue_depth(), 0u);

  // Five messages across two mailboxes: depth sums all of them.
  transport.send(request(0, 1, {1, 2}));
  transport.send(request(0, 2, {3}));
  transport.send(request(1, 2, {4}));
  transport.send(request(2, 1, {5}));
  transport.send(request(1, 0, {}));
  EXPECT_EQ(transport.queue_depth(), 5u);
  EXPECT_EQ(transport.max_queue_depth(), 5u);

  // Draining one mailbox lowers the live depth; the mark stays.
  HaloMessage out;
  ASSERT_TRUE(transport.receive(1, &out));
  EXPECT_EQ(out.from, 0);
  ASSERT_TRUE(transport.receive(1, &out));
  EXPECT_EQ(out.from, 2);
  EXPECT_FALSE(transport.receive(1, &out));
  EXPECT_EQ(transport.queue_depth(), 3u);
  EXPECT_EQ(transport.max_queue_depth(), 5u);

  // The mark only moves when a send pushes past it.
  transport.send(request(0, 1, {6}));
  EXPECT_EQ(transport.queue_depth(), 4u);
  EXPECT_EQ(transport.max_queue_depth(), 5u);
  transport.send(request(0, 1, {7}));
  transport.send(request(0, 1, {8}));
  EXPECT_EQ(transport.queue_depth(), 6u);
  EXPECT_EQ(transport.max_queue_depth(), 6u);

  // reset() drops pending messages but keeps cumulative stats and the
  // high-water mark (it is "since construction", not "since reset").
  transport.reset(3);
  EXPECT_EQ(transport.queue_depth(), 0u);
  EXPECT_EQ(transport.max_queue_depth(), 6u);
  EXPECT_EQ(transport.stats().messages, 8u);
}

TEST(TransportDepth, DerivedGaugesReadLiveDepth) {
  auto transport = std::make_shared<InProcessTransport>();
  transport->reset(2);
  obs::MetricRegistry registry;
  const int owner = 0;
  register_transport_metrics(registry, transport, "transport.test", &owner);

  transport->send(request(0, 1, {1, 2, 3}));
  transport->send(request(1, 0, {4}));
  HaloMessage out;
  ASSERT_TRUE(transport->receive(0, &out));

  const obs::MetricSnapshot snap = registry.snapshot();
  ASSERT_TRUE(snap.has("transport.test.queue_depth"));
  ASSERT_TRUE(snap.has("transport.test.max_queue_depth"));
  ASSERT_TRUE(snap.has("transport.test.messages"));
  ASSERT_TRUE(snap.has("transport.test.requested_nodes"));
  ASSERT_TRUE(snap.has("transport.test.bytes"));
  double depth = -1, max_depth = -1, messages = -1, requested = -1;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "transport.test.queue_depth") depth = gauge.value;
    if (gauge.name == "transport.test.max_queue_depth") {
      max_depth = gauge.value;
    }
    if (gauge.name == "transport.test.messages") messages = gauge.value;
    if (gauge.name == "transport.test.requested_nodes") {
      requested = gauge.value;
    }
  }
  EXPECT_EQ(depth, 1.0);      // one of the two messages was received
  EXPECT_EQ(max_depth, 2.0);  // both were queued at once
  EXPECT_EQ(messages, 2.0);
  EXPECT_EQ(requested, 4.0);

  // remove_owned withdraws the gauges; the shared_ptr capture kept the
  // transport alive for the registry in the meantime.
  registry.remove_owned(&owner);
  EXPECT_FALSE(registry.snapshot().has("transport.test.queue_depth"));
}

}  // namespace
}  // namespace lcp
