// Matchings: maximal/maximum/Konig/weighted duals, cross-checked against
// brute force on random instances (the LP-duality machinery of Section 2.3
// rests on these).
#include <gtest/gtest.h>

#include <random>

#include "algo/bipartite.hpp"
#include "algo/matching.hpp"
#include "graph/generators.hpp"

namespace lcp {
namespace {

TEST(Matching, IsMatchingDetectsConflicts) {
  const Graph g = gen::path(4);  // edges 0-1, 1-2, 2-3
  EXPECT_TRUE(is_matching(g, {true, false, true}));
  EXPECT_FALSE(is_matching(g, {true, true, false}));
}

TEST(Matching, GreedyIsMaximal) {
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    const Graph g = gen::random_graph(10, 0.3, seed);
    EXPECT_TRUE(is_maximal_matching(g, greedy_maximal_matching(g)));
  }
}

TEST(Matching, MaximalButNotMaximumDetected) {
  // Path of 4: middle edge alone is maximal but not maximum.
  const Graph g = gen::path(4);
  EXPECT_TRUE(is_maximal_matching(g, {false, true, false}));
  EXPECT_EQ(max_matching_bruteforce(g), 2);
}

TEST(Matching, KuhnMatchesBruteForceOnBipartite) {
  for (std::uint32_t seed = 0; seed < 30; ++seed) {
    Graph g = gen::random_graph(9, 0.35, seed);
    const auto side = two_coloring(g);
    if (!side.has_value()) continue;
    const auto mates = max_bipartite_matching(g, *side);
    int size = 0;
    for (int v = 0; v < g.n(); ++v) {
      if (mates[static_cast<std::size_t>(v)] >= 0) ++size;
    }
    EXPECT_EQ(size / 2, max_matching_bruteforce(g)) << "seed " << seed;
  }
}

TEST(Matching, KuhnPerfectOnCompleteBipartite) {
  const Graph g = gen::complete_bipartite(5, 5);
  const auto side = two_coloring(g);
  const auto mates = max_bipartite_matching(g, *side);
  for (int v = 0; v < g.n(); ++v) EXPECT_GE(mates[static_cast<std::size_t>(v)], 0);
}

TEST(Matching, KonigCoverCertifiesOptimality) {
  for (std::uint32_t seed = 100; seed < 140; ++seed) {
    Graph g = gen::random_graph(10, 0.3, seed);
    const auto side = two_coloring(g);
    if (!side.has_value()) continue;
    const auto mates = max_bipartite_matching(g, *side);
    const auto cover = konig_cover(g, *side, mates);
    // Cover covers every edge.
    for (int e = 0; e < g.m(); ++e) {
      EXPECT_TRUE(cover[static_cast<std::size_t>(g.edge_u(e))] ||
                  cover[static_cast<std::size_t>(g.edge_v(e))]);
    }
    // |C| == |M| and every cover node is matched.
    int cover_size = 0;
    int matching_size = 0;
    for (int v = 0; v < g.n(); ++v) {
      if (cover[static_cast<std::size_t>(v)]) {
        ++cover_size;
        EXPECT_GE(mates[static_cast<std::size_t>(v)], 0);
      }
      if (mates[static_cast<std::size_t>(v)] >= 0) ++matching_size;
    }
    EXPECT_EQ(cover_size, matching_size / 2);
  }
}

class WeightedDuals : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WeightedDuals, DualsAreOptimalFeasibleIntegral) {
  const std::uint32_t seed = GetParam();
  std::mt19937 rng(seed);
  Graph g = gen::random_graph(8, 0.4, seed);
  const auto side = two_coloring(g);
  if (!side.has_value()) GTEST_SKIP() << "non-bipartite sample";
  std::uniform_int_distribution<int> weight(0, 6);
  for (int e = 0; e < g.m(); ++e) g.set_edge_weight(e, weight(rng));

  const auto y = max_weight_matching_duals(g, *side);
  // Feasibility.
  for (int e = 0; e < g.m(); ++e) {
    EXPECT_GE(y[static_cast<std::size_t>(g.edge_u(e))] +
                  y[static_cast<std::size_t>(g.edge_v(e))],
              g.edge_weight(e));
  }
  for (std::int64_t v : y) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 6);
  }
  // Optimality: total == brute-force max weight (Egervary).
  std::int64_t total = 0;
  for (std::int64_t v : y) total += v;
  EXPECT_EQ(total, max_weight_matching_bruteforce(g, nullptr));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeightedDuals, ::testing::Range(0u, 40u));

TEST(WeightedMatching, ValueOnWeightedPath) {
  Graph g = gen::path(4);
  g.set_edge_weight(0, 3);
  g.set_edge_weight(1, 5);
  g.set_edge_weight(2, 3);
  const auto side = two_coloring(g);
  EXPECT_EQ(max_weight_matching_value(g, *side), 6);  // take the two outer
}

TEST(WeightedMatching, ZeroWeightsGiveZeroDuals) {
  Graph g = gen::complete_bipartite(3, 3);
  for (int e = 0; e < g.m(); ++e) g.set_edge_weight(e, 0);
  const auto side = two_coloring(g);
  const auto y = max_weight_matching_duals(g, *side);
  for (std::int64_t v : y) EXPECT_EQ(v, 0);
}

TEST(WeightedMatching, BruteForceMaskIsMatching) {
  Graph g = gen::complete_bipartite(3, 4);
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> weight(0, 9);
  for (int e = 0; e < g.m(); ++e) g.set_edge_weight(e, weight(rng));
  std::vector<bool> mask;
  const std::int64_t best = max_weight_matching_bruteforce(g, &mask);
  EXPECT_TRUE(is_matching(g, mask));
  std::int64_t total = 0;
  for (int e = 0; e < g.m(); ++e) {
    if (mask[static_cast<std::size_t>(e)]) total += g.edge_weight(e);
  }
  EXPECT_EQ(total, best);
}

}  // namespace
}  // namespace lcp
