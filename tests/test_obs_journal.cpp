// Flight-recorder journal semantics: per-thread rings with bounded
// capacity (old events overwritten, true count kept), global seq order
// across threads, static-key args, JSONL rendering, and the null-guarded
// maybe_emit fast path.  The multithreaded hammer runs under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.hpp"

namespace lcp::obs {
namespace {

TEST(Journal, EmitsInSeqOrderWithArgs) {
  Journal journal;
  journal.emit(JournalEventKind::kBatchApplied, "session",
               {{"ops", 3}, {"generation", 7}});
  journal.emit(JournalEventKind::kRepairEmitted, "tree-cert", {{"ops", 2}});
  journal.emit(JournalEventKind::kVerdictFlip, "session",
               {{"accepting", 0}, {"rejecting", 4}});

  const std::vector<JournalEvent> events = journal.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].kind, JournalEventKind::kBatchApplied);
  EXPECT_STREQ(events[0].label, "session");
  EXPECT_STREQ(events[0].args[0].key, "ops");
  EXPECT_EQ(events[0].args[0].value, 3);
  EXPECT_STREQ(events[0].args[1].key, "generation");
  EXPECT_EQ(events[0].args[1].value, 7);
  EXPECT_EQ(events[0].args[2].key, nullptr);
  EXPECT_EQ(journal.total_emitted(), 3u);
}

TEST(Journal, KindNamesAreStableSnakeCase) {
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kBatchApplied),
               "batch_applied");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kRepairEmitted),
               "repair_emitted");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kRepairDeclined),
               "repair_declined");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kReprove), "reprove");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kPatchFallback),
               "patch_fallback");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kHaloExchange),
               "halo_exchange");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kLaneDispatch),
               "lane_dispatch");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kTransportSend),
               "transport_send");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kStoreAdopt),
               "store_adopt");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kStorePublish),
               "store_publish");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kCacheOverflow),
               "cache_overflow");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kVerdictFlip),
               "verdict_flip");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kSpotSample),
               "spot_sample");
  EXPECT_STREQ(journal_kind_name(JournalEventKind::kSpotEscalate),
               "spot_escalate");
}

TEST(Journal, RingOverwritesOldestButCountsEverything) {
  Journal journal(/*per_thread_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    journal.emit(JournalEventKind::kBatchApplied, "session", {{"ops", i}});
  }
  const std::vector<JournalEvent> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, still in order.
  EXPECT_EQ(events[0].args[0].value, 6);
  EXPECT_EQ(events[3].args[0].value, 9);
  EXPECT_EQ(journal.total_emitted(), 10u);
}

TEST(Journal, TailReturnsTheNewestEvents) {
  Journal journal;
  for (int i = 0; i < 8; ++i) {
    journal.emit(JournalEventKind::kReprove, "session", {{"ops", i}});
  }
  const std::vector<JournalEvent> tail = journal.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].args[0].value, 5);
  EXPECT_EQ(tail[2].args[0].value, 7);
  EXPECT_EQ(journal.tail(100).size(), 8u);
}

TEST(Journal, JsonlOneObjectPerLineWithSchemaFields) {
  Journal journal;
  journal.emit(JournalEventKind::kLaneDispatch, "engine.parallel",
               {{"lanes", 4}, {"nodes", 100}});
  journal.emit(JournalEventKind::kStoreAdopt, "store.ball", {{"radius", 2}});
  const std::string jsonl = journal.to_jsonl();
  // Two lines, each a JSON object carrying the schema fields the CI
  // checker (tools/check_telemetry.py) validates.
  const std::size_t newline = jsonl.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string first = jsonl.substr(0, newline);
  EXPECT_NE(first.find("\"seq\":"), std::string::npos);
  EXPECT_NE(first.find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(first.find("\"tid\":"), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"lane_dispatch\""), std::string::npos);
  EXPECT_NE(first.find("\"label\":\"engine.parallel\""), std::string::npos);
  EXPECT_NE(first.find("\"lanes\":4"), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(Journal, MaybeEmitToleratesNull) {
  maybe_emit(nullptr, JournalEventKind::kVerdictFlip, "session",
             {{"accepting", 1}});
  Journal journal;
  maybe_emit(&journal, JournalEventKind::kVerdictFlip, "session",
             {{"accepting", 1}});
  EXPECT_EQ(journal.total_emitted(), 1u);
}

TEST(Journal, ConcurrentEmittersKeepPerThreadRingsAndGlobalSeq) {
  Journal journal(/*per_thread_capacity=*/64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.emit(JournalEventKind::kTransportSend, "transport",
                     {{"from", t}, {"to", i}});
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(journal.total_emitted(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(journal.thread_count(), static_cast<std::size_t>(kThreads));
  const std::vector<JournalEvent> events = journal.events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads * 64));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

}  // namespace
}  // namespace lcp::obs
