// Randomized dynamic-maintenance fuzz: after every maintained batch the
// pipeline's verdict must be bit-identical to a fresh stateless
// DirectEngine sweep over the maintained assignment, must equal the
// scheme's ground truth (accept iff the property holds), and — whenever
// the property holds — a scheme-regenerated proof must be fully accepted
// too, pinning the maintained assignment to the same acceptance class as
// the static prover's.  The tree stream is steered to cross component
// merges, splits, splices, re-rootings, node additions, and the decline/
// reprove fallback; the suite runs under ASan+UBSan in CI.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algo/matching.hpp"
#include "bench/churn_stream.hpp"
#include "core/engine.hpp"
#include "core/shard_transport.hpp"
#include "core/sharded_engine.hpp"
#include "core/spot_check.hpp"
#include "dynamic/coloring_maintainer.hpp"
#include "dynamic/matching_maintainer.hpp"
#include "dynamic/pipeline.hpp"
#include "dynamic/tree_maintainer.hpp"
#include "graph/generators.hpp"
#include "schemes/chromatic.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

namespace lcp {
namespace {

using dynamic::DynamicPipeline;

/// The three-way equivalence checked after every batch.
void check_step(DynamicPipeline& pipe, const RunResult& got, int step) {
  DirectEngine direct({/*cache_views=*/false});
  const RunResult want =
      direct.run(pipe.graph(), pipe.proof(), pipe.scheme().verifier());
  ASSERT_EQ(got.all_accept, want.all_accept) << "step " << step;
  ASSERT_EQ(got.rejecting, want.rejecting) << "step " << step;

  const bool holds = pipe.scheme().holds(pipe.graph());
  ASSERT_EQ(got.all_accept, holds) << "step " << step;
  if (holds) {
    const auto fresh = pipe.scheme().prove(pipe.graph());
    ASSERT_TRUE(fresh.has_value()) << "step " << step;
    const RunResult regen =
        direct.run(pipe.graph(), *fresh, pipe.scheme().verifier());
    ASSERT_TRUE(regen.all_accept) << "step " << step;
    ASSERT_EQ(got.rejecting, regen.rejecting) << "step " << step;
  }
}

int pick_node(std::mt19937& rng, const Graph& g) {
  return std::uniform_int_distribution<int>(0, g.n() - 1)(rng);
}

/// A uniformly random absent pair, or {-1, -1} when the graph is dense.
std::pair<int, int> pick_absent_edge(std::mt19937& rng, const Graph& g) {
  for (int tries = 0; tries < 32; ++tries) {
    const int u = pick_node(rng, g);
    const int v = pick_node(rng, g);
    if (u != v && !g.has_edge(u, v)) return {u, v};
  }
  return {-1, -1};
}

std::pair<int, int> pick_present_edge(std::mt19937& rng, const Graph& g) {
  if (g.m() == 0) return {-1, -1};
  const int e = std::uniform_int_distribution<int>(0, g.m() - 1)(rng);
  return {g.edge_u(e), g.edge_v(e)};
}

TEST(DynamicFuzz, TreeCertificatesUnderChurn) {
  const schemes::LeaderElectionScheme scheme;
  Graph g0 = gen::random_connected(24, 0.08, 20260730);
  g0.set_label(0, schemes::kLeaderFlag);
  DynamicPipeline pipe(
      std::move(g0), scheme,
      std::make_unique<dynamic::TreeCertMaintainer>(schemes::kLeaderFlag));
  ASSERT_TRUE(pipe.maintainer_bound());

  std::mt19937 rng(99);
  int leader = 0;
  NodeId next_id = pipe.graph().max_id() + 1;
  for (int step = 0; step < 150; ++step) {
    const Graph& g = pipe.graph();
    MutationBatch batch;
    const int roll = std::uniform_int_distribution<int>(0, 99)(rng);
    if (roll < 34) {
      const auto [u, v] = pick_present_edge(rng, g);
      if (u >= 0) batch.remove_edge(u, v);
    } else if (roll < 70) {
      const auto [u, v] = pick_absent_edge(rng, g);
      if (u >= 0) batch.add_edge(u, v);
    } else if (roll < 80) {
      const int v = pick_node(rng, g);
      if (v != leader) {
        batch.set_node_label(leader, 0);
        batch.set_node_label(v, schemes::kLeaderFlag);
        leader = v;
      }
    } else if (roll < 88) {
      // Node growth, sometimes with an edge op BEFORE the add in the same
      // batch: the maintainer's replay then scans final-graph neighbor
      // lists that name the not-yet-grown node.
      if (roll < 82) {
        const auto [u, v] = pick_present_edge(rng, g);
        if (u >= 0) batch.remove_edge(u, v);
      }
      batch.add_node(next_id++);
      if (roll < 84) batch.add_edge(g.n(), pick_node(rng, g));
    } else if (roll < 96) {
      // Remove-then-re-add inside one batch, plus an extra removal.
      const auto [u, v] = pick_present_edge(rng, g);
      if (u >= 0) {
        batch.remove_edge(u, v);
        batch.add_edge(u, v);
      }
      const auto [a, b] = pick_present_edge(rng, g);
      if (a >= 0 && !(a == u && b == v) && !(a == v && b == u)) {
        batch.remove_edge(a, b);
      }
    } else {
      // Out-of-band proof tamper: forces the decline/reprove fallback.
      batch.set_proof_label(pick_node(rng, g),
                            BitString::from_string("110"));
    }
    if (batch.empty()) continue;
    const RunResult r = pipe.apply(batch);
    check_step(pipe, r, step);
  }

  // The stream must have crossed the interesting structural events.
  const auto& stats =
      static_cast<dynamic::TreeCertMaintainer*>(pipe.maintainer())->stats();
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.splices, 0u);
  EXPECT_GT(stats.reroots, 0u);
  EXPECT_GT(pipe.stats().repaired, 60u);
  EXPECT_GT(pipe.stats().declined, 0u);
}

TEST(DynamicFuzz, GreedyColoringUnderChurn) {
  const int k = 4;
  const schemes::ChromaticLeqKScheme scheme(k);
  DynamicPipeline pipe(gen::random_graph(22, 0.15, 11),
                       scheme,
                       std::make_unique<dynamic::GreedyColoringMaintainer>(k));
  ASSERT_TRUE(pipe.maintainer_bound());

  std::mt19937 rng(7);
  NodeId next_id = pipe.graph().max_id() + 1;
  for (int step = 0; step < 120; ++step) {
    const Graph& g = pipe.graph();
    MutationBatch batch;
    const int roll = std::uniform_int_distribution<int>(0, 99)(rng);
    if (roll < 45) {
      const auto [u, v] = pick_absent_edge(rng, g);
      if (u >= 0) batch.add_edge(u, v);
    } else if (roll < 85) {
      const auto [u, v] = pick_present_edge(rng, g);
      if (u >= 0) batch.remove_edge(u, v);
    } else {
      // Sometimes a conflict-prone insertion precedes the growth in the
      // same batch, exercising replay against a not-yet-grown node.
      if (roll < 92) {
        const auto [u, v] = pick_absent_edge(rng, g);
        if (u >= 0) batch.add_edge(u, v);
      }
      batch.add_node(next_id++);
      batch.add_edge(g.n(), pick_node(rng, g));
    }
    if (batch.empty()) continue;
    const RunResult r = pipe.apply(batch);
    check_step(pipe, r, step);
  }
  EXPECT_GT(pipe.stats().repaired, 90u);
}

TEST(DynamicFuzz, MaximalMatchingUnderChurn) {
  const schemes::MaximalMatchingScheme scheme;
  Graph g0 = gen::random_graph(26, 0.12, 5);
  const std::vector<bool> matched = greedy_maximal_matching(g0);
  for (int e = 0; e < g0.m(); ++e) {
    if (matched[static_cast<std::size_t>(e)]) {
      g0.set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
    }
  }
  DynamicPipeline pipe(std::move(g0), scheme,
                       std::make_unique<dynamic::MatchingMaintainer>(
                           schemes::MaximalMatchingScheme::kMatchedBit));
  ASSERT_TRUE(pipe.maintainer_bound());

  std::mt19937 rng(13);
  NodeId next_id = pipe.graph().max_id() + 1;
  for (int step = 0; step < 120; ++step) {
    const Graph& g = pipe.graph();
    MutationBatch batch;
    const int roll = std::uniform_int_distribution<int>(0, 99)(rng);
    if (roll < 40) {
      const auto [u, v] = pick_present_edge(rng, g);
      if (u >= 0) batch.remove_edge(u, v);
    } else if (roll < 75) {
      const auto [u, v] = pick_absent_edge(rng, g);
      if (u >= 0) batch.add_edge(u, v);
    } else if (roll < 90) {
      // Out-of-band toggle of the matched bit: must be healed or adopted.
      const auto [u, v] = pick_present_edge(rng, g);
      if (u >= 0) {
        const int e = g.edge_index(u, v);
        batch.set_edge_label(
            u, v,
            g.edge_label(e) ^ schemes::MaximalMatchingScheme::kMatchedBit);
      }
    } else {
      // A removal first frees endpoints whose rematch scan then sees the
      // not-yet-grown node in its final-graph neighbor list.
      if (roll < 93) {
        const auto [u, v] = pick_present_edge(rng, g);
        if (u >= 0) batch.remove_edge(u, v);
      }
      batch.add_node(next_id++);
      if (roll < 95) batch.add_edge(g.n(), pick_node(rng, g));
    }
    if (batch.empty()) continue;
    const RunResult r = pipe.apply(batch);
    // The maintainer always repairs, so the matching stays maximal and
    // every node accepts at every step.
    EXPECT_TRUE(r.all_accept) << "step " << step;
    check_step(pipe, r, step);
  }
  EXPECT_EQ(pipe.stats().reproves, 0u);
  EXPECT_EQ(pipe.stats().repaired, pipe.stats().batches);
}

TEST(DynamicFuzz, MergeHeavyComponentIdentity) {
  // A hub with P chains of length L: cutting a chain's hub link severs a
  // deep subtree (split), re-adding it merges, and tip-to-tip links merge
  // whole chains sideways.  The stream is split/merge-saturated on
  // purpose — the union-find beside the forest must keep root_of exact
  // across hundreds of record merges and re-allocations, with check_step
  // re-deriving the ground truth after every batch.
  constexpr int kChains = 4;
  constexpr int kLen = 6;
  Graph g0;
  const int hub = g0.add_node(1, schemes::kLeaderFlag);
  std::vector<std::vector<int>> chains(kChains);
  NodeId next_id = 2;
  for (int c = 0; c < kChains; ++c) {
    int prev = hub;
    for (int i = 0; i < kLen; ++i) {
      const int v = g0.add_node(next_id++);
      g0.add_edge(prev, v);
      chains[static_cast<std::size_t>(c)].push_back(v);
      prev = v;
    }
  }

  const schemes::LeaderElectionScheme scheme;
  DynamicPipeline pipe(
      std::move(g0), scheme,
      std::make_unique<dynamic::TreeCertMaintainer>(schemes::kLeaderFlag));
  ASSERT_TRUE(pipe.maintainer_bound());

  // 200 rounds allocate ~one union-find record each (one per split):
  // enough to cross the maintainer's compaction threshold (4n + 64
  // records at n = 25), so the rebuild-and-keep-serving path is
  // exercised too.
  std::mt19937 rng(20260731);
  int step = 0;
  for (int round = 0; round < 200; ++round) {
    const int c = static_cast<int>(rng() % kChains);
    const int d = static_cast<int>((c + 1 + rng() % (kChains - 1)) % kChains);
    const auto& cc = chains[static_cast<std::size_t>(c)];
    const auto& cd = chains[static_cast<std::size_t>(d)];
    const int cut = static_cast<int>(rng() % 3);  // depth of the cut link
    const int cu = cut == 0 ? hub : cc[static_cast<std::size_t>(cut - 1)];
    const int cv = cc[static_cast<std::size_t>(cut)];

    MutationBatch sever;
    sever.remove_edge(cu, cv);
    check_step(pipe, pipe.apply(sever), step++);

    if (rng() % 2 == 0) {
      // Bridge the severed chain to a neighbouring chain's tip first (a
      // cross-chain merge), then restore the cut link (another merge).
      MutationBatch bridge;
      bridge.add_edge(cc.back(), cd.back());
      check_step(pipe, pipe.apply(bridge), step++);
      MutationBatch unbridge;
      unbridge.add_edge(cu, cv);
      unbridge.remove_edge(cc.back(), cd.back());
      check_step(pipe, pipe.apply(unbridge), step++);
    } else {
      MutationBatch restore;
      restore.add_edge(cu, cv);
      check_step(pipe, pipe.apply(restore), step++);
    }
  }

  const auto& stats =
      static_cast<dynamic::TreeCertMaintainer*>(pipe.maintainer())->stats();
  EXPECT_GT(stats.merges, 150u);
  EXPECT_GT(stats.splits, 150u);
  EXPECT_GT(stats.record_compactions, 0u);
  EXPECT_EQ(pipe.stats().declined, 0u);
  EXPECT_EQ(pipe.stats().repaired, pipe.stats().batches);
}

// ---------------------------------------------------------------------------
// The patching x sharding matrix, at pipeline level, under a churn stream.
// ---------------------------------------------------------------------------

TEST(DynamicFuzz, FourWayMatrixUnderChurnStream) {
  // Four pipelines over identical starting state, one per {patch} x
  // {shard} combination, plus a random-toggle fifth, all fed the
  // preferential-attachment + sliding-window stream (bench/churn_stream.hpp)
  // with leader moves layered on.  After every batch all pipelines must
  // report bit-identical verdicts, identical graph and tracker state
  // fingerprints, and pipeline 0 passes the full ground-truth check.
  const schemes::LeaderElectionScheme scheme;
  Graph start = gen::random_connected(22, 0.08, 20260731);
  start.set_label(0, schemes::kLeaderFlag);

  struct Lane {
    std::string name;
    std::unique_ptr<DynamicPipeline> pipe;
  };
  auto make_lane = [&](const std::string& name,
                       IncrementalEngineOptions options) {
    Lane lane;
    lane.name = name;
    lane.pipe = std::make_unique<DynamicPipeline>(
        start, scheme,
        std::make_unique<dynamic::TreeCertMaintainer>(schemes::kLeaderFlag),
        std::move(options));
    EXPECT_TRUE(lane.pipe->maintainer_bound()) << name;
    return lane;
  };
  std::vector<Lane> lanes;
  lanes.push_back(make_lane(
      "patch+serial", {.verify_state = false, .patch_views = true}));
  lanes.push_back(make_lane("patch+shard", {.verify_state = false,
                                            .patch_views = true,
                                            .shard_threads = 3,
                                            .shard_min_centers = 0}));
  lanes.push_back(make_lane(
      "reextract+serial", {.verify_state = false, .patch_views = false}));
  lanes.push_back(make_lane("reextract+shard", {.verify_state = false,
                                                .patch_views = false,
                                                .shard_threads = 3,
                                                .shard_min_centers = 0}));
  lanes.push_back(make_lane(
      "random-toggle", {.verify_state = false, .shard_min_centers = 0}));

  // Cross-shard churn round: ShardedEngine instances ride lane 0's tracker
  // through the same stream and must stay bit-identical.  The hash
  // partition scatters ids, so nearly every batch straddles shards and the
  // halo machinery is exercised on every step; the 7-way range split keeps
  // shards tiny (~3 owned nodes) so fringes dominate.
  ShardedEngineOptions hash_options;
  hash_options.shards = 4;
  hash_options.partitioner = std::make_shared<HashPartitioner>();
  ShardedEngine sharded_hash(hash_options);
  ShardedEngineOptions range_options;
  range_options.shards = 7;
  ShardedEngine sharded_range(range_options);
  ASSERT_TRUE(sharded_hash.attach_tracker(&lanes[0].pipe->tracker()));
  ASSERT_TRUE(sharded_range.attach_tracker(&lanes[0].pipe->tracker()));

  // Spot-check riders: two budgets x two exact inners also ride lane 0's
  // tracker through the same stream.  A sampled ACCEPT may be a false
  // negative by design, but every rider REJECT must be exact-confirmed
  // (bit-identical to the ground-truth verdict), the error accounting
  // must be monotone with miss_bound in [0, 1], and a periodic audit must
  // realign each rider with the exact verdict.
  struct SpotRider {
    std::string name;
    std::unique_ptr<SpotCheckEngine> engine;
    std::uint64_t sampled = 0;
    std::uint64_t skipped = 0;
    std::uint64_t escalations = 0;
  };
  std::vector<SpotRider> riders;
  for (const double budget : {0.3, 0.08}) {
    for (const char* inner : {"incremental", "direct"}) {
      SpotRider rider;
      rider.name =
          "spot:" + std::to_string(budget) + ":" + std::string(inner);
      rider.engine = std::make_unique<SpotCheckEngine>(
          make_engine(inner),
          SpotCheckOptions{.budget = budget, .seed = 0xabc0ULL});
      ASSERT_TRUE(rider.engine->attach_tracker(&lanes[0].pipe->tracker()));
      riders.push_back(std::move(rider));
    }
  }

  bench::ChurnStream stream({.grow_probability = 0.3,
                             .attach_edges = 2,
                             .churn_edges = 2,
                             .window = 10,
                             .seed = 4242});
  std::mt19937 rng(31337);
  int leader = 0;
  for (int step = 0; step < 110; ++step) {
    const Graph& g = lanes[0].pipe->graph();
    MutationBatch batch;
    stream.next(step, g, &batch);
    if (rng() % 5 == 0 && g.n() > 1) {
      const int next = static_cast<int>(rng() % static_cast<unsigned>(g.n()));
      if (next != leader) {
        batch.set_node_label(leader, 0);
        batch.set_node_label(next, schemes::kLeaderFlag);
        leader = next;
      }
    }
    if (batch.empty()) continue;

    lanes[4].pipe->engine().set_patch_views(rng() % 2 == 0);
    lanes[4].pipe->engine().set_shard_threads(rng() % 2 == 0 ? 3 : 0);

    const RunResult want = lanes[0].pipe->apply(batch);
    check_step(*lanes[0].pipe, want, step);
    const std::uint64_t want_graph_fp =
        graph_fingerprint(lanes[0].pipe->graph());
    const std::uint64_t want_state_fp =
        lanes[0].pipe->tracker().state_fingerprint();
    for (std::size_t i = 1; i < lanes.size(); ++i) {
      const RunResult got = lanes[i].pipe->apply(batch);
      ASSERT_EQ(want.all_accept, got.all_accept)
          << lanes[i].name << " step " << step;
      ASSERT_EQ(want.rejecting, got.rejecting)
          << lanes[i].name << " step " << step;
      ASSERT_EQ(want_graph_fp, graph_fingerprint(lanes[i].pipe->graph()))
          << lanes[i].name << " step " << step;
      ASSERT_EQ(want_state_fp, lanes[i].pipe->tracker().state_fingerprint())
          << lanes[i].name << " step " << step;
    }
    for (ShardedEngine* sharded : {&sharded_hash, &sharded_range}) {
      const RunResult got =
          sharded->run(lanes[0].pipe->graph(), lanes[0].pipe->proof(),
                       scheme.verifier());
      ASSERT_EQ(want.all_accept, got.all_accept)
          << "sharded:" << sharded->shard_count() << " step " << step;
      ASSERT_EQ(want.rejecting, got.rejecting)
          << "sharded:" << sharded->shard_count() << " step " << step;
    }
    for (SpotRider& rider : riders) {
      const bool audited = step % 17 == 0;
      if (audited) rider.engine->request_audit();
      const RunResult got =
          rider.engine->run(lanes[0].pipe->graph(), lanes[0].pipe->proof(),
                            scheme.verifier());
      if (audited || !got.all_accept) {
        // Audited runs and rejections are exact by contract: the result
        // must be bit-identical to the ground-truth verdict, never the
        // raw sample.
        ASSERT_EQ(want.all_accept, got.all_accept)
            << rider.name << " step " << step;
        ASSERT_EQ(want.rejecting, got.rejecting)
            << rider.name << " step " << step;
      }
      const SpotCheckEngine::Stats& s = rider.engine->stats();
      ASSERT_GE(s.balls_sampled, rider.sampled)
          << rider.name << " step " << step;
      ASSERT_GE(s.balls_skipped, rider.skipped)
          << rider.name << " step " << step;
      ASSERT_GE(s.escalations, rider.escalations)
          << rider.name << " step " << step;
      ASSERT_GE(s.miss_bound, 0.0) << rider.name << " step " << step;
      ASSERT_LE(s.miss_bound, 1.0) << rider.name << " step " << step;
      rider.sampled = s.balls_sampled;
      rider.skipped = s.balls_skipped;
      rider.escalations = s.escalations;
    }
  }

  // The stream must have driven the interesting machinery in every lane.
  EXPECT_GT(lanes[0].pipe->engine().stats().views_patched, 0u);
  EXPECT_GT(lanes[1].pipe->engine().stats().sharded_rounds, 0u);
  EXPECT_GT(lanes[2].pipe->engine().stats().reextractions, 0u);
  EXPECT_GT(lanes[0].pipe->stats().repaired, 40u);
  // The sharded riders must have taken the delta path and moved real
  // fringe traffic (hash scatters ids, so churn is cross-shard by design).
  EXPECT_GT(sharded_hash.stats().incremental_runs, 0u);
  EXPECT_GT(sharded_hash.transport().stats().records, 0u);
  EXPECT_GT(sharded_range.stats().incremental_runs, 0u);
  EXPECT_GT(sharded_range.stats().shards_woken, 0u);
  for (SpotRider& rider : riders) {
    const SpotCheckEngine::Stats& s = rider.engine->stats();
    EXPECT_GT(s.sampled_runs, 0u) << rider.name;
    EXPECT_GT(s.balls_skipped, 0u) << rider.name;
    EXPECT_GE(s.audits, 5u) << rider.name;
    rider.engine->attach_tracker(nullptr);
  }
  sharded_hash.attach_tracker(nullptr);
  sharded_range.attach_tracker(nullptr);
}

}  // namespace
}  // namespace lcp
