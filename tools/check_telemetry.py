#!/usr/bin/env python3
"""Validate the telemetry exports the example/benches produce.

Usage:
    tools/check_telemetry.py METRICS_JSON TRACE_JSON

Checks, against the naming convention in src/obs/metrics.hpp
(`layer.component.metric`, lower-case):

  * the metric snapshot parses as JSON and has the three kind sections;
  * every metric name is well-formed (lower-case, >= 2 dot-separated
    segments);
  * every layer a full session wires up is present: session.*, engine.*,
    store.*, pool.*, maintainer.*;
  * a handful of load-bearing metrics exist by exact name;
  * histogram entries carry ordered percentiles (p50 <= p90 <= p99 <= max);
  * the Chrome trace parses, events are complete ("ph" == "X") with
    id/parent args, every non-root parent id exists, and the span tree
    contains a session.apply span with nested phase children.

Exits non-zero (with a message per failure) when anything is missing, so
CI can gate on it.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

REQUIRED_LAYERS = ["session", "engine", "store", "pool", "maintainer"]

REQUIRED_METRICS = [
    "session.apply.latency",
    "session.phase.mutate",
    "session.phase.verify",
    "session.batches",
    "session.repaired",
    "engine.incremental.full_sweeps",
    "engine.incremental.nodes_reverified",
    "store.ball.hit_rate",
    "store.ball.entries",
    "pool.incremental.lanes",
    "pool.incremental.dispatches",
]

REQUIRED_SPANS = ["session.apply", "session.mutate", "session.verify"]


def fail(errors: list, message: str) -> None:
    errors.append(message)


def check_metrics(path: str, errors: list) -> None:
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)

    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(errors, f"metrics: missing '{section}' section")
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    names = list(counters) + list(gauges) + list(histograms)
    if not names:
        fail(errors, "metrics: snapshot is empty")

    for name in names:
        if not NAME_RE.match(name):
            fail(errors, f"metrics: name '{name}' violates the "
                         "layer.component.metric convention")

    for layer in REQUIRED_LAYERS:
        if not any(n.startswith(layer + ".") for n in names):
            fail(errors, f"metrics: no '{layer}.*' metrics — a session "
                         "layer went dark")

    for required in REQUIRED_METRICS:
        if required not in names:
            fail(errors, f"metrics: required metric '{required}' missing")

    for name, hist in histograms.items():
        for key in ("count", "p50_ns", "p90_ns", "p99_ns", "max_ns"):
            if key not in hist:
                fail(errors, f"metrics: histogram '{name}' lacks '{key}'")
        if not (hist.get("p50_ns", 0) <= hist.get("p90_ns", 0)
                <= hist.get("p99_ns", 0) <= hist.get("max_ns", 0)):
            fail(errors, f"metrics: histogram '{name}' percentiles are "
                         "not ordered")

    print(f"metrics ok: {len(counters)} counters, {len(gauges)} gauges, "
          f"{len(histograms)} histograms across "
          f"{len({n.split('.')[0] for n in names})} layers")


def check_trace(path: str, errors: list) -> None:
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, "trace: no traceEvents")
        return

    ids = set()
    for e in events:
        if e.get("ph") != "X":
            fail(errors, f"trace: event '{e.get('name')}' is not a "
                         "complete event")
        args = e.get("args", {})
        if "id" not in args or "parent" not in args:
            fail(errors, f"trace: event '{e.get('name')}' lacks id/parent "
                         "args")
        else:
            ids.add(args["id"])
        if e.get("dur", -1) < 0 or e.get("ts", -1) < 0:
            fail(errors, f"trace: event '{e.get('name')}' has negative "
                         "ts/dur")

    for e in events:
        parent = e.get("args", {}).get("parent", 0)
        if parent != 0 and parent not in ids:
            fail(errors, f"trace: event '{e.get('name')}' references "
                         f"unknown parent {parent}")

    by_name = {}
    for e in events:
        by_name.setdefault(e["name"], []).append(e)
    for required in REQUIRED_SPANS:
        if required not in by_name:
            fail(errors, f"trace: required span '{required}' missing")

    # At least one apply span must have phase children: the nesting is the
    # whole point of the recorder.
    apply_ids = {e["args"]["id"] for e in by_name.get("session.apply", [])}
    nested = [e for e in events
              if e["args"].get("parent") in apply_ids
              and e["name"] != "session.apply"]
    if apply_ids and not nested:
        fail(errors, "trace: session.apply spans have no phase children")

    print(f"trace ok: {len(events)} spans, {len(by_name)} distinct names, "
          f"{len(nested)} phase spans nested under session.apply")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list = []
    try:
        check_metrics(sys.argv[1], errors)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"metrics: cannot read {sys.argv[1]}: {exc}")
    try:
        check_trace(sys.argv[2], errors)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"trace: cannot read {sys.argv[2]}: {exc}")
    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
