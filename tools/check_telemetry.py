#!/usr/bin/env python3
"""Validate the telemetry exports the example/benches produce.

Usage:
    tools/check_telemetry.py METRICS_JSON TRACE_JSON [JOURNAL_JSONL [REJECTION_JSON]]
    tools/check_telemetry.py --server METRICS_JSON JOURNAL_JSONL

The second form validates the session-server exports that
bench/server_compare.cpp dumps (server_metrics.json /
server_journal.jsonl): the server's telemetry carries server.* and
pool.server.* metrics instead of the full per-session layer set, and no
trace, so the layer and span requirements differ.

Checks, against the naming convention in src/obs/metrics.hpp
(`layer.component.metric`, lower-case):

  * the metric snapshot parses as JSON and has the three kind sections;
  * every metric name is well-formed (lower-case, >= 2 dot-separated
    segments);
  * every layer a full session wires up is present: session.*, engine.*,
    store.*, pool.*, maintainer.*;
  * a handful of load-bearing metrics exist by exact name;
  * histogram entries carry ordered percentiles (p50 <= p90 <= p99 <= max);
  * the Chrome trace parses, events are complete ("ph" == "X") with
    id/parent args, every non-root parent id exists, and the span tree
    contains a session.apply span with nested phase children.

With the optional third/fourth arguments it also validates the
diagnosis-tier exports from src/obs/journal.hpp and src/obs/forensics.hpp:

  * the flight-recorder JSONL: one object per line, each carrying
    seq/ts_ns/tid/kind/args with kind drawn from the fixed snake_case
    vocabulary, seq strictly increasing down the file, integer args;
  * the rejection report: every schema field present, witnesses non-empty
    whenever centers reject (with each witness centered on a rejecting
    node and carrying a serialized ball view), the shrunken batch no
    larger than the batches it was shrunk from, and a seq-ordered
    journal window.

Exits non-zero (with a message per failure) when anything is missing, so
CI can gate on it.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

REQUIRED_LAYERS = ["session", "engine", "store", "pool", "maintainer"]

REQUIRED_METRICS = [
    "session.apply.latency",
    "session.phase.mutate",
    "session.phase.verify",
    "session.batches",
    "session.repaired",
    "engine.incremental.full_sweeps",
    "engine.incremental.nodes_reverified",
    "store.ball.hit_rate",
    "store.ball.entries",
    "pool.incremental.lanes",
    "pool.incremental.dispatches",
]

REQUIRED_SPANS = ["session.apply", "session.mutate", "session.verify"]

# What the session server's telemetry must carry (src/server/): the
# admission/coalescing counters, the apply latency histogram, the live
# derived gauges, and its WorkerPool's lane metrics.
SERVER_REQUIRED_LAYERS = ["server", "pool"]

SERVER_REQUIRED_METRICS = [
    "server.admitted",
    "server.applies",
    "server.coalesced_batches",
    "server.overloads",
    "server.apply.latency",
    "server.sessions",
    "server.queue_depth",
    "server.max_queue_depth",
    "pool.server.lanes",
    "pool.server.dispatches",
]

# The fixed event vocabulary in src/obs/journal.hpp — kept in lockstep
# with journal_kind_name() and tests/test_obs_journal.cpp.
JOURNAL_KINDS = {
    "batch_applied",
    "repair_emitted",
    "repair_declined",
    "reprove",
    "patch_fallback",
    "halo_exchange",
    "lane_dispatch",
    "transport_send",
    "store_adopt",
    "store_publish",
    "cache_overflow",
    "verdict_flip",
    "spot_sample",
    "spot_escalate",
    "server_admit",
    "server_coalesce",
    "server_overload",
}

JOURNAL_EVENT_FIELDS = ["seq", "ts_ns", "tid", "kind", "args"]

REJECTION_FIELDS = [
    "batch_index",
    "generation",
    "scheme",
    "engine",
    "radius",
    "rejecting",
    "newly_rejecting",
    "witnesses",
    "mutation_batch",
    "repair_batch",
    "minimal_batch",
    "raw_batch_rejects",
    "shrink_evals",
    "repair_history",
    "journal_window",
]


def fail(errors: list, message: str) -> None:
    errors.append(message)


def check_metrics(path: str, errors: list,
                  required_layers=None, required_metrics=None) -> None:
    if required_layers is None:
        required_layers = REQUIRED_LAYERS
    if required_metrics is None:
        required_metrics = REQUIRED_METRICS
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)

    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(errors, f"metrics: missing '{section}' section")
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    names = list(counters) + list(gauges) + list(histograms)
    if not names:
        fail(errors, "metrics: snapshot is empty")

    for name in names:
        if not NAME_RE.match(name):
            fail(errors, f"metrics: name '{name}' violates the "
                         "layer.component.metric convention")

    for layer in required_layers:
        if not any(n.startswith(layer + ".") for n in names):
            fail(errors, f"metrics: no '{layer}.*' metrics — a session "
                         "layer went dark")

    for required in required_metrics:
        if required not in names:
            fail(errors, f"metrics: required metric '{required}' missing")

    for name, hist in histograms.items():
        for key in ("count", "p50_ns", "p90_ns", "p99_ns", "max_ns"):
            if key not in hist:
                fail(errors, f"metrics: histogram '{name}' lacks '{key}'")
        if not (hist.get("p50_ns", 0) <= hist.get("p90_ns", 0)
                <= hist.get("p99_ns", 0) <= hist.get("max_ns", 0)):
            fail(errors, f"metrics: histogram '{name}' percentiles are "
                         "not ordered")

    print(f"metrics ok: {len(counters)} counters, {len(gauges)} gauges, "
          f"{len(histograms)} histograms across "
          f"{len({n.split('.')[0] for n in names})} layers")


def check_trace(path: str, errors: list) -> None:
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, "trace: no traceEvents")
        return

    ids = set()
    for e in events:
        if e.get("ph") != "X":
            fail(errors, f"trace: event '{e.get('name')}' is not a "
                         "complete event")
        args = e.get("args", {})
        if "id" not in args or "parent" not in args:
            fail(errors, f"trace: event '{e.get('name')}' lacks id/parent "
                         "args")
        else:
            ids.add(args["id"])
        if e.get("dur", -1) < 0 or e.get("ts", -1) < 0:
            fail(errors, f"trace: event '{e.get('name')}' has negative "
                         "ts/dur")

    for e in events:
        parent = e.get("args", {}).get("parent", 0)
        if parent != 0 and parent not in ids:
            fail(errors, f"trace: event '{e.get('name')}' references "
                         f"unknown parent {parent}")

    by_name = {}
    for e in events:
        by_name.setdefault(e["name"], []).append(e)
    for required in REQUIRED_SPANS:
        if required not in by_name:
            fail(errors, f"trace: required span '{required}' missing")

    # At least one apply span must have phase children: the nesting is the
    # whole point of the recorder.
    apply_ids = {e["args"]["id"] for e in by_name.get("session.apply", [])}
    nested = [e for e in events
              if e["args"].get("parent") in apply_ids
              and e["name"] != "session.apply"]
    if apply_ids and not nested:
        fail(errors, "trace: session.apply spans have no phase children")

    print(f"trace ok: {len(events)} spans, {len(by_name)} distinct names, "
          f"{len(nested)} phase spans nested under session.apply")


def check_journal_event(event: dict, where: str, errors: list) -> None:
    for field in JOURNAL_EVENT_FIELDS:
        if field not in event:
            fail(errors, f"{where} lacks '{field}'")
    kind = event.get("kind")
    if kind is not None and kind not in JOURNAL_KINDS:
        fail(errors, f"{where} has unknown kind '{kind}'")
    for field in ("seq", "ts_ns", "tid"):
        value = event.get(field)
        if value is not None and (not isinstance(value, int) or value < 0):
            fail(errors, f"{where} has non-integer {field}: {value!r}")
    args = event.get("args")
    if args is not None:
        if not isinstance(args, dict):
            fail(errors, f"{where} args is not an object")
        else:
            for key, value in args.items():
                if not isinstance(value, int):
                    fail(errors, f"{where} arg '{key}' is not an integer")


def check_seq_order(events: list, where: str, errors: list) -> None:
    seqs = [e["seq"] for e in events
            if isinstance(e, dict) and isinstance(e.get("seq"), int)]
    if any(b <= a for a, b in zip(seqs, seqs[1:])):
        fail(errors, f"{where}: seq numbers are not strictly increasing")


def check_journal(path: str, errors: list) -> None:
    with open(path, encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line.strip()]
    if not lines:
        fail(errors, "journal: file has no events")
        return
    events = []
    for i, line in enumerate(lines, 1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(errors, f"journal: line {i} is not JSON: {exc}")
            continue
        if not isinstance(event, dict):
            fail(errors, f"journal: line {i} is not an object")
            continue
        check_journal_event(event, f"journal: line {i}", errors)
        events.append(event)
    check_seq_order(events, "journal", errors)
    kinds = {e.get("kind") for e in events}
    print(f"journal ok: {len(events)} events across "
          f"{len({e.get('tid') for e in events})} threads, "
          f"{len(kinds & JOURNAL_KINDS)} distinct kinds")


def check_rejection(path: str, errors: list) -> None:
    with open(path, encoding="utf-8") as f:
        report = json.load(f)

    for field in REJECTION_FIELDS:
        if field not in report:
            fail(errors, f"rejection: report lacks '{field}'")

    rejecting = report.get("rejecting", [])
    witnesses = report.get("witnesses", [])
    if rejecting and not witnesses:
        fail(errors, "rejection: centers reject but no witness balls were "
                     "captured")
    rejecting_set = set(rejecting)
    for i, witness in enumerate(witnesses):
        where = f"rejection: witness {i}"
        for field in ("center", "newly_rejecting", "view"):
            if field not in witness:
                fail(errors, f"{where} lacks '{field}'")
        if witness.get("center") not in rejecting_set:
            fail(errors, f"{where} centers on {witness.get('center')}, "
                         "which is not a rejecting node")
        view = witness.get("view", {})
        for field in ("center", "center_id", "radius", "nodes", "edges"):
            if field not in view:
                fail(errors, f"{where} view lacks '{field}'")
        if not view.get("nodes"):
            fail(errors, f"{where} view has no nodes")

    def ops_of(key):
        batch = report.get(key, [])
        return batch if isinstance(batch, list) else []

    minimal = len(ops_of("minimal_batch"))
    window = len(ops_of("mutation_batch")) + len(ops_of("repair_batch"))
    if report.get("raw_batch_rejects"):
        window = len(ops_of("mutation_batch"))
    if minimal > window:
        fail(errors, f"rejection: minimal batch ({minimal} ops) is larger "
                     f"than the batch it was shrunk from ({window} ops)")

    radius = report.get("radius", -1)
    if not isinstance(radius, int) or radius < 0:
        fail(errors, f"rejection: bad radius {radius!r}")

    for i, event in enumerate(report.get("journal_window", [])):
        check_journal_event(event, f"rejection: journal_window[{i}]", errors)
    check_seq_order(report.get("journal_window", []),
                    "rejection: journal_window", errors)

    print(f"rejection ok: {len(rejecting)} rejecting, "
          f"{len(witnesses)} witness balls, minimal batch {minimal} op(s) "
          f"shrunk from {window}")


def check_server_journal(path: str, errors: list) -> None:
    """Like check_journal, but also insists the server kinds showed up —
    a soak that never admits or coalesces validated nothing."""
    with open(path, encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line.strip()]
    events = []
    for i, line in enumerate(lines, 1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(errors, f"journal: line {i} is not JSON: {exc}")
            continue
        if not isinstance(event, dict):
            fail(errors, f"journal: line {i} is not an object")
            continue
        check_journal_event(event, f"journal: line {i}", errors)
        events.append(event)
    check_seq_order(events, "journal", errors)
    kinds = {e.get("kind") for e in events}
    for required in ("server_admit", "server_coalesce", "server_overload"):
        if required not in kinds:
            fail(errors, f"journal: no '{required}' events — the soak did "
                         "not exercise that path")
    print(f"server journal ok: {len(events)} events, "
          f"{len(kinds & JOURNAL_KINDS)} distinct kinds")


def server_main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list = []
    try:
        check_metrics(argv[0], errors, SERVER_REQUIRED_LAYERS,
                      SERVER_REQUIRED_METRICS)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"metrics: cannot read {argv[0]}: {exc}")
    try:
        check_server_journal(argv[1], errors)
    except OSError as exc:
        fail(errors, f"journal: cannot read {argv[1]}: {exc}")
    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if errors else 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--server":
        return server_main(sys.argv[2:])
    if len(sys.argv) < 3 or len(sys.argv) > 5:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list = []
    try:
        check_metrics(sys.argv[1], errors)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"metrics: cannot read {sys.argv[1]}: {exc}")
    try:
        check_trace(sys.argv[2], errors)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"trace: cannot read {sys.argv[2]}: {exc}")
    if len(sys.argv) > 3:
        try:
            check_journal(sys.argv[3], errors)
        except OSError as exc:
            fail(errors, f"journal: cannot read {sys.argv[3]}: {exc}")
    if len(sys.argv) > 4:
        try:
            check_rejection(sys.argv[4], errors)
        except (OSError, json.JSONDecodeError) as exc:
            fail(errors, f"rejection: cannot read {sys.argv[4]}: {exc}")
    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
