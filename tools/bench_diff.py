#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Usage: bench_diff.py BASELINE.json FRESH.json [--threshold-pct PCT]

Both files are bench outputs (bench/*.cpp via bench::json_header).  The
tool prints a provenance comparison from the headers, then a per-row
delta table of every timing metric (keys ending in ``_ms`` plus the
``timings_ms`` sub-objects), matching rows across files by their
identity fields (name/scheme, n, shards).

Exit status is non-zero when any timing metric regressed (fresh slower
than baseline) by more than ``--threshold-pct`` percent — unless either
side is a sanitized build, which is reported as non-comparable and never
gated.

Baselines written before the provenance header landed lack
git_describe/git_commit/build_type/compiler/sanitized; absent fields are
shown as ``-`` and never fail the comparison.
"""

import argparse
import json
import sys

PROVENANCE_FIELDS = [
    "generated_by",
    "git_describe",
    "git_commit",
    "build_type",
    "compiler",
    "sanitized",
    "hardware_threads",
    "shards",
]

IDENTITY_FIELDS = ["name", "scheme", "n", "shards"]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")


def row_sections(doc):
    """Top-level keys holding lists of row objects (workloads, sweep, churn)."""
    return {
        key: value
        for key, value in doc.items()
        if isinstance(value, list)
        and value
        and all(isinstance(row, dict) for row in value)
    }


def row_identity(row):
    return tuple(
        (field, row[field]) for field in IDENTITY_FIELDS if field in row
    )


def timing_metrics(row):
    """Flat {metric: value} of the row's timing fields (lower is better)."""
    out = {}
    for key, value in row.items():
        if isinstance(value, dict) and key == "timings_ms":
            for sub, ms in value.items():
                if isinstance(ms, (int, float)):
                    out[f"timings_ms.{sub}"] = float(ms)
        elif key.endswith("_ms") and isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def identity_label(identity):
    return " ".join(
        str(v) if k in ("name", "scheme") else f"{k}={v}" for k, v in identity
    )


def print_provenance(base, fresh):
    print(f"{'provenance':<22} {'baseline':>24} {'fresh':>24}")
    for field in PROVENANCE_FIELDS:
        b = base.get(field, "-")
        f = fresh.get(field, "-")
        marker = "" if b == f or "-" in (b, f) else "  *"
        print(f"{field:<22} {str(b)[:24]:>24} {str(f)[:24]:>24}{marker}")
    print()


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench JSON files and gate on regressions"
    )
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=10.0,
        help="fail when a timing metric is slower by more than this percent "
        "(default: %(default)s)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    print_provenance(base, fresh)

    sanitized = bool(base.get("sanitized")) or bool(fresh.get("sanitized"))
    if sanitized:
        print(
            "note: at least one side is a sanitized build — timings are "
            "not comparable; deltas shown for information only.\n"
        )

    regressions = []
    missing = []
    header = f"{'row':<34} {'metric':<34} {'baseline':>10} {'fresh':>10} {'delta':>8}"
    for section, base_rows in row_sections(base).items():
        fresh_rows = {
            row_identity(r): r for r in row_sections(fresh).get(section, [])
        }
        print(f"[{section}]")
        print(header)
        for base_row in base_rows:
            identity = row_identity(base_row)
            label = identity_label(identity)
            fresh_row = fresh_rows.get(identity)
            if fresh_row is None:
                missing.append(f"{section}: {label}")
                print(f"{label:<34} {'(row missing in fresh)':<34}")
                continue
            base_metrics = timing_metrics(base_row)
            fresh_metrics = timing_metrics(fresh_row)
            for metric, base_ms in sorted(base_metrics.items()):
                fresh_ms = fresh_metrics.get(metric)
                if fresh_ms is None:
                    missing.append(f"{section}: {label} {metric}")
                    print(f"{label:<34} {metric:<34} {base_ms:>10.1f} {'-':>10}")
                    continue
                if base_ms <= 0:
                    delta_str = "-"
                    delta = 0.0
                else:
                    delta = 100.0 * (fresh_ms - base_ms) / base_ms
                    delta_str = f"{delta:+.1f}%"
                flag = ""
                if not sanitized and delta > args.threshold_pct:
                    flag = "  REGRESSED"
                    regressions.append(
                        f"{section}: {label} {metric} "
                        f"{base_ms:.1f}ms -> {fresh_ms:.1f}ms ({delta:+.1f}%)"
                    )
                print(
                    f"{label:<34} {metric:<34} {base_ms:>10.1f} "
                    f"{fresh_ms:>10.1f} {delta_str:>8}{flag}"
                )
        print()

    if missing:
        print(f"{len(missing)} baseline row(s)/metric(s) absent in fresh run:")
        for item in missing:
            print(f"  - {item}")
        print()

    if regressions:
        print(
            f"FAIL: {len(regressions)} metric(s) regressed past "
            f"{args.threshold_pct:.1f}%:"
        )
        for item in regressions:
            print(f"  - {item}")
        return 1

    if sanitized:
        print("OK (non-comparable: sanitized build; no gating applied)")
    else:
        print(f"OK: no timing metric regressed past {args.threshold_pct:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
