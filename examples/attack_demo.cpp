// The adversary's-eye view: run the Section 5.3 gluing attack end to end
// against a leader-election scheme whose certificates were "optimised"
// down to 3 bits per field — and watch the forged world get accepted.
//
// This is the paper's lower bound as a security incident: certificates
// below the Theta(log n) threshold cannot distinguish one leader from two.
#include <cstdio>

#include "core/incremental.hpp"
#include "core/runner.hpp"
#include "lower/gluing.hpp"

int main() {
  using namespace lcp;
  using namespace lcp::lower;

  const int n = 65;       // each forged half is a 65-cycle
  const int budget = 3;   // bits per certificate field (log2 n would be 7)

  std::printf("target: leader election certificates with %d-bit fields on "
              "%d-node rings (log2 n = 7)\n\n", budget, n);

  const GluingProblem problem = leader_election_problem(budget);
  // The splice itself is a delta (drop two closing edges, add two cross
  // edges), so the incremental engine re-audits only the seam balls.
  IncrementalEngine engine;
  const GluingOutcome o = run_gluing_attack(problem, n, n, 8, engine);

  std::printf("[1] enumerated rings C(a,b) and their certificates\n");
  std::printf("[2] only %zu distinct certificate fingerprints near the "
              "seams (pigeonhole!)\n", o.num_colors);
  if (!o.found_collision) {
    std::printf("[3] no usable collision -- attack failed.\n");
    return 0;
  }
  std::printf("[3] collision: rings C(%llu,%llu) and C(%llu,%llu) look "
              "identical at the seams\n",
              static_cast<unsigned long long>(o.a1),
              static_cast<unsigned long long>(o.b1),
              static_cast<unsigned long long>(o.a2),
              static_cast<unsigned long long>(o.b2));
  std::printf("[4] spliced both rings into one %d-node ring carrying TWO "
              "leaders\n", 2 * n);
  std::printf("[5] verification sweep: %s\n",
              o.all_accept ? "every node accepts the forged world"
                           : "a node rejects");
  std::printf("    (incremental re-audit: %llu of %d node verdicts "
              "recomputed after the splice)\n",
              static_cast<unsigned long long>(engine.stats().nodes_reverified),
              2 * n);
  std::printf("    ground truth: %s\n\n",
              o.glued_is_yes ? "instance is actually valid"
                             : "instance is INVALID (two leaders)");
  std::printf("%s\n", o.fooled()
                          ? "ATTACK SUCCESSFUL - certificates below "
                            "Theta(log n) are forgeable."
                          : "attack failed");

  std::printf("\nmitigation check: full-width certificates on the same "
              "rings...\n");
  const GluingOutcome honest =
      run_gluing_attack(leader_election_problem(0), n, n, 8);
  std::printf("fingerprints: %zu, collision: %s => %s\n", honest.num_colors,
              honest.found_collision ? "found" : "none",
              honest.fooled() ? "STILL FORGEABLE (bug)" : "forgery impossible");
  return 0;
}
