// Scenario: an assignment market (workers x jobs, integer valuations)
// clears a max-weight matching, and every participant wants to verify
// optimality *locally* — seeing only its own dual price and its
// neighbours'.  This is Section 2.3's LP-duality scheme: O(log W) bits
// per node, verified by feasibility + complementary slackness.
#include <cstdio>
#include <random>

#include "algo/bipartite.hpp"
#include "algo/matching.hpp"
#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "schemes/matching_schemes.hpp"

int main() {
  using namespace lcp;
  DirectEngine engine;  // the execution backend for every audit below
  using schemes::MaxWeightMatchingScheme;

  // 6 workers, 6 jobs, valuations 0..9.
  constexpr int kWorkers = 6;
  constexpr std::int64_t kMaxValue = 9;
  Graph market = gen::complete_bipartite(kWorkers, kWorkers);
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> value(0, static_cast<int>(kMaxValue));
  for (int e = 0; e < market.m(); ++e) market.set_edge_weight(e, value(rng));

  // Clear the market (any exact solver; here brute force for clarity).
  std::vector<bool> assignment;
  const std::int64_t welfare =
      max_weight_matching_bruteforce(market, &assignment);
  for (int e = 0; e < market.m(); ++e) {
    if (assignment[static_cast<std::size_t>(e)]) {
      market.set_edge_label(e, MaxWeightMatchingScheme::kMatchedBit);
    }
  }
  std::printf("market cleared: total welfare %lld\n",
              static_cast<long long>(welfare));

  // Publish dual prices as the certificate.
  const MaxWeightMatchingScheme scheme(kMaxValue);
  const Proof prices = *scheme.prove(market);
  std::printf("certificate: %d bits per participant (log W = %d)\n",
              prices.size_bits(), bit_width_for(kMaxValue));
  const auto side = *two_coloring(market);
  std::int64_t price_sum = 0;
  for (int v = 0; v < market.n(); ++v) {
    BitReader r(prices.labels[static_cast<std::size_t>(v)]);
    const auto price = r.read_uint(prices.size_bits());
    price_sum += static_cast<std::int64_t>(price);
    std::printf("  %s %llu: dual price %llu\n",
                side[static_cast<std::size_t>(v)] == 0 ? "worker" : "job   ",
                static_cast<unsigned long long>(market.id(v)),
                static_cast<unsigned long long>(price));
  }
  std::printf("sum of prices = %lld = welfare (strong duality)\n",
              static_cast<long long>(price_sum));

  std::printf("local verification: %s\n",
              engine.run(market, prices, scheme.verifier()).all_accept
                  ? "every participant confirms optimality"
                  : "ALARM");

  // A participant tries to sneak a better deal: swap one matched edge for
  // an unmatched one it prefers.  Someone's slackness check fires.
  Graph tampered = market;
  int dropped = -1;
  for (int e = 0; e < tampered.m() && dropped < 0; ++e) {
    if (tampered.edge_label(e) & MaxWeightMatchingScheme::kMatchedBit) {
      tampered.set_edge_label(e, 0);
      dropped = e;
    }
  }
  const RunResult r = engine.run(tampered, prices, scheme.verifier());
  std::printf("after dropping one assignment: %zu participant(s) object\n",
              r.rejecting.size());
  return 0;
}
