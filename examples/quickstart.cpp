// Quickstart: the locally-checkable-proofs workflow in 60 lines.
//
//   1. build a labelled communication graph;
//   2. pick a scheme (here: bipartiteness, the paper's 1-bit example);
//   3. run the prover to obtain a per-node proof;
//   4. run the constant-radius verifier at every node through an
//      ExecutionEngine (direct, message-passing, or parallel backend);
//   5. watch a corrupted proof get caught by some node;
//   6. do all of the above in two lines with the VerificationSession
//      facade — including a conjunction scheme composed by name.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/example_quickstart
#include <cstdio>

#include "core/checker.hpp"
#include "core/engine.hpp"
#include "core/runner.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "schemes/lcp_const.hpp"

int main() {
  using namespace lcp;

  // A 6-cycle: bipartite, so a yes-instance.
  const Graph g = gen::cycle(6);
  const schemes::BipartiteScheme scheme;

  std::printf("graph: %s", g.to_string().c_str());
  std::printf("property '%s' holds: %s\n", scheme.name().c_str(),
              scheme.holds(g) ? "yes" : "no");

  // The prover hands every node one bit: its side of the 2-colouring.
  const Proof proof = *scheme.prove(g);
  std::printf("proof size: %d bit(s) per node\n", proof.size_bits());
  for (int v = 0; v < g.n(); ++v) {
    std::printf("  node id %llu  proof \"%s\"\n",
                static_cast<unsigned long long>(g.id(v)),
                proof.labels[static_cast<std::size_t>(v)].to_string().c_str());
  }

  // Every node checks only its radius-1 view.  The sweep over all nodes is
  // an ExecutionEngine; DirectEngine is the default backend.
  DirectEngine engine;
  const RunResult verdict = engine.run(g, proof, scheme.verifier());
  std::printf("verifier: %s\n",
              verdict.all_accept ? "all nodes accept" : "rejected");

  // ...and even a single flipped bit is caught by somebody.
  Proof corrupted = proof;
  corrupted.labels[2] = BitString::from_string(
      corrupted.labels[2].bit(0) ? "0" : "1");
  const RunResult caught = engine.run(g, corrupted, scheme.verifier());
  std::printf("after flipping node 3's bit: %zu node(s) raise the alarm\n",
              caught.rejecting.size());

  // Every backend produces the same verdicts; pick one by name.
  for (const char* backend : {"direct", "message-passing", "parallel"}) {
    const RunResult r = make_engine(backend)->run(g, corrupted,
                                                  scheme.verifier());
    std::printf("  %-16s engine: %zu alarm(s)\n", backend,
                r.rejecting.size());
  }

  // No-instances have NO valid proof at all: exhaustively checked.
  const Graph odd = gen::cycle(5);
  std::printf("C5 (an odd cycle): any 1-bit proof accepted? %s\n",
              exists_accepted_proof(odd, scheme.verifier(), 1) ? "yes (bug!)"
                                                               : "no");

  // The VerificationSession facade wires the same stack up by name, and
  // '&' composes registered schemes into a conjunction (proofs
  // concatenate, verdicts AND, evaluated at the max component radius).
  auto session = VerificationSession::on(gen::cycle(6))
                     .scheme("bipartite & even-n-cycles")
                     .engine(EngineKind::kDirect)
                     .build();
  std::printf("session['%s'] on C6: %s\n", session.scheme().name().c_str(),
              session.verify().all_accept ? "all nodes accept"
                                          : "rejected");
  return 0;
}
