// Scenario: a network operator distributes a spanning tree (say, for
// broadcast routing) and wants every switch to be able to audit it locally
// — no trusted controller, no global view.  This is exactly the paper's
// Theta(log n) spanning-tree certification (Section 5.1, after [KKP05]).
//
// The demo builds a 48-node network, certifies a correct tree, then
// injects the failures operators actually see — a dropped tree edge
// (partition) and an extra edge (loop) — and shows which switches raise
// alarms.
#include <cstdio>

#include "algo/traversal.hpp"
#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "schemes/tree_certified.hpp"

int main() {
  using namespace lcp;
  using schemes::SpanningTreeScheme;

  Graph net = gen::random_connected(48, 0.08, 2026);
  std::printf("network: %d switches, %d links\n", net.n(), net.m());

  // The operator computes a BFS tree and marks its links.
  const RootedTree tree = bfs_tree(net, 0);
  for (int v = 1; v < net.n(); ++v) {
    net.set_edge_label(
        net.edge_index(v, tree.parent[static_cast<std::size_t>(v)]),
        SpanningTreeScheme::kTreeEdgeBit);
  }

  // Audits run through the parallel engine: every switch checks its own
  // radius-1 view, so the sweep shards freely across hardware threads.
  ParallelEngine engine;

  const SpanningTreeScheme scheme;
  const Proof certificate = *scheme.prove(net);
  std::printf("certificate: %d bits per switch (O(log n))\n",
              certificate.size_bits());
  std::printf("audit of the healthy tree: %s\n\n",
              engine.run(net, certificate, scheme.verifier()).all_accept
                  ? "all 48 switches accept"
                  : "ALARM");

  // Failure 1: a tree link is demoted (e.g. misconfigured VLAN): the
  // marked edge set no longer spans.
  {
    Graph broken = net;
    for (int e = 0; e < broken.m(); ++e) {
      if (broken.edge_label(e) & SpanningTreeScheme::kTreeEdgeBit) {
        broken.set_edge_label(e, 0);
        std::printf("failure 1: dropped tree link %llu-%llu\n",
                    static_cast<unsigned long long>(broken.id(broken.edge_u(e))),
                    static_cast<unsigned long long>(broken.id(broken.edge_v(e))));
        break;
      }
    }
    const RunResult r = engine.run(broken, certificate, scheme.verifier());
    std::printf("  alarms at %zu switch(es): the partition is detected "
                "locally\n\n", r.rejecting.size());
  }

  // Failure 2: an extra link gets marked as a tree link: a loop.
  {
    Graph broken = net;
    for (int e = 0; e < broken.m(); ++e) {
      if (!(broken.edge_label(e) & SpanningTreeScheme::kTreeEdgeBit)) {
        broken.set_edge_label(e, SpanningTreeScheme::kTreeEdgeBit);
        std::printf("failure 2: spurious tree link %llu-%llu (loop!)\n",
                    static_cast<unsigned long long>(broken.id(broken.edge_u(e))),
                    static_cast<unsigned long long>(broken.id(broken.edge_v(e))));
        break;
      }
    }
    const RunResult r = engine.run(broken, certificate, scheme.verifier());
    std::printf("  alarms at %zu switch(es)\n\n", r.rejecting.size());
  }

  // Failure 3: a stale certificate after the tree was re-rooted.
  {
    const RootedTree other = bfs_tree(net, net.n() / 2);
    Graph moved = gen::random_connected(48, 0.08, 2026);
    for (int v = 0; v < moved.n(); ++v) {
      if (v == other.root) continue;
      moved.set_edge_label(
          moved.edge_index(v, other.parent[static_cast<std::size_t>(v)]),
          SpanningTreeScheme::kTreeEdgeBit);
    }
    const RunResult r = engine.run(moved, certificate, scheme.verifier());
    std::printf("failure 3: tree re-rooted but certificate is stale\n");
    std::printf("  alarms at %zu switch(es): certificates cannot be "
                "replayed\n", r.rejecting.size());
  }
  return 0;
}
