// Scenario: a network operator pins broadcast routing to a spanning tree
// rooted at the controller, and every switch audits its own neighbourhood
// — no trusted controller view, exactly the paper's Theta(log n) tree
// certification (Section 5.1, after [KKP05]).
//
// The static version of this demo re-certified the whole network after
// every event.  This one builds a VerificationSession (core/session.hpp),
// the facade over the dynamic serving stack: the scheme is resolved by
// registry name, maintain(true) binds the TreeCertMaintainer that patches
// certificates along the affected tree paths, link churn flows through
// the session's DeltaTracker, and the IncrementalEngine re-audits only
// the switches whose neighbourhoods moved.  Alarms still fire instantly
// on real faults — soundness never depends on the maintainer.
#include <cstdio>
#include <memory>

#include "core/engine.hpp"
#include "core/session.hpp"
#include "dynamic/tree_maintainer.hpp"
#include "graph/generators.hpp"
#include "schemes/tree_certified.hpp"

int main() {
  using namespace lcp;

  Graph net = gen::random_connected(48, 0.08, 2026);
  net.set_label(0, schemes::kLeaderFlag);  // switch 0 is the controller
  std::printf("network: %d switches, %d links; controller at switch %llu\n",
              net.n(), net.m(),
              static_cast<unsigned long long>(net.id(0)));

  auto pipe = VerificationSession::on(std::move(net))
                  .scheme("leader-election")
                  .engine(EngineKind::kIncremental)
                  .maintain(true)
                  .build();
  auto* maintainer =
      static_cast<dynamic::TreeCertMaintainer*>(pipe.maintainer());

  std::printf("initial certificate: %d bits per switch (O(log n))\n",
              pipe.proof().size_bits());
  std::printf("audit of the healthy network: %s\n\n",
              pipe.verify().all_accept ? "all 48 switches accept" : "ALARM");

  // Event 1: a link flaps.  The maintainer splices the tree around the
  // dropped link and patches only the certificates along the repair path.
  {
    const int e = 0;
    const int u = pipe.graph().edge_u(e);
    const int v = pipe.graph().edge_v(e);
    MutationBatch down;
    down.remove_edge(u, v);
    const RunResult r = pipe.apply(down);
    std::printf("event 1: link %llu-%llu down\n",
                static_cast<unsigned long long>(pipe.graph().id(u)),
                static_cast<unsigned long long>(pipe.graph().id(v)));
    std::printf("  repaired %llu certificate(s); audit: %s\n\n",
                static_cast<unsigned long long>(
                    maintainer->stats().labels_emitted),
                r.all_accept ? "all switches accept" : "ALARM");
  }

  // Event 2: a partition.  Cutting every link of one switch strands it;
  // the maintainer keeps serving the forest, and the audit raises alarms
  // exactly at the stranded region's certified root and the old root.
  {
    const int victim = 17;
    MutationBatch cut;
    const auto nbrs = pipe.graph().neighbors(victim);
    std::vector<int> peers;
    for (const HalfEdge& h : nbrs) peers.push_back(h.to);
    for (int peer : peers) cut.remove_edge(victim, peer);
    const RunResult r = pipe.apply(cut);
    std::printf("event 2: switch %llu loses all %zu links (partition)\n",
                static_cast<unsigned long long>(pipe.graph().id(victim)),
                peers.size());
    std::printf("  audit: alarms at %zu switch(es) — detected locally\n",
                r.rejecting.size());

    MutationBatch heal;
    for (int peer : peers) heal.add_edge(victim, peer);
    std::printf("  links restored; audit: %s\n\n",
                pipe.apply(heal).all_accept ? "all switches accept"
                                            : "ALARM");
  }

  // Event 3: controller failover.  Moving the leader flag re-roots the
  // certified tree at the new controller — the dynamic analogue of
  // re-running the prover.
  {
    const int successor = 31;
    MutationBatch failover;
    failover.set_node_label(0, 0);
    failover.set_node_label(successor, schemes::kLeaderFlag);
    const RunResult r = pipe.apply(failover);
    std::printf("event 3: controller fails over to switch %llu\n",
                static_cast<unsigned long long>(
                    pipe.graph().id(successor)));
    std::printf("  tree re-rooted (%llu re-rooting(s) so far); audit: %s\n\n",
                static_cast<unsigned long long>(maintainer->stats().reroots),
                r.all_accept ? "all switches accept" : "ALARM");
  }

  // Event 4: certificate tampering.  A forged label arrives through the
  // mutation channel; the maintainer refuses to adopt it and the pipeline
  // falls back to a full reprove — the audit never trusts repairs.
  {
    MutationBatch tamper;
    tamper.set_proof_label(5, BitString::from_string("10110"));
    const RunResult r = pipe.apply(tamper);
    std::printf("event 4: forged certificate injected at switch %llu\n",
                static_cast<unsigned long long>(pipe.graph().id(5)));
    std::printf("  maintainer declined (%llu decline(s)), pipeline "
                "reproved (%llu reprove(s)); audit: %s\n\n",
                static_cast<unsigned long long>(pipe.stats().declined),
                static_cast<unsigned long long>(pipe.stats().reproves),
                r.all_accept ? "all switches accept" : "ALARM");
  }

  const auto& stats = pipe.stats();
  const auto& engine_stats = pipe.incremental_engine()->stats();
  std::printf("session totals: %llu batches, %llu repaired, %llu "
              "reproved; engine re-verified %llu switch-audits "
              "incrementally (%llu full sweeps)\n",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.repaired),
              static_cast<unsigned long long>(stats.reproves),
              static_cast<unsigned long long>(engine_stats.nodes_reverified),
              static_cast<unsigned long long>(engine_stats.full_sweeps));
  return 0;
}
