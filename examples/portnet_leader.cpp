// Scenario: a sensor network whose nodes have NO unique identifiers —
// only locally numbered ports and one designated gateway (the paper's M2
// model, Section 7.1).  Can such a network still verify a LogLCP property?
//
// Yes: the translation synthesises unique ids from DFS discovery/finish
// intervals on a certified spanning tree, then runs the id-based verifier
// on them.  We certify "the network has an odd number of sensors" end to
// end in the port model.
#include <cstdio>
#include <memory>

#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "local/port_model.hpp"
#include "schemes/tree_certified.hpp"

int main() {
  using namespace lcp;
  DirectEngine engine;  // the execution backend for every audit below

  Graph net = gen::random_connected(21, 0.15, 99);
  net.set_label(5, kLeaderLabel);  // the gateway
  std::printf("sensor network: %d nodes, %d links, gateway at node %llu\n",
              net.n(), net.m(),
              static_cast<unsigned long long>(net.id(5)));

  const auto inner = std::make_shared<schemes::ParityScheme>(true);
  const M1ToM2Scheme scheme(inner);
  std::printf("property: '%s' (n = %d, odd) -- %s\n", inner->name().c_str(),
              net.n(), scheme.holds(net) ? "holds" : "does not hold");

  const Proof proof = *scheme.prove(net);
  std::printf("port-model certificate: %d bits per sensor\n",
              proof.size_bits());
  std::printf("  (spanning-tree certificate + DFS interval [x,y] + the "
              "id-based inner proof)\n");

  const RunResult r = engine.run(net, proof, scheme.verifier());
  std::printf("verification (ports only, ids hidden): %s\n",
              r.all_accept ? "all sensors accept" : "ALARM");

  // The ids really are irrelevant: re-id the whole network (order-
  // preserving so ports stay put) and verify the same certificate.
  std::vector<NodeId> ids = net.ids();
  for (NodeId& id : ids) id = id * 1000 + 17;
  const Graph renamed = gen::with_ids(net, ids);
  std::printf("same certificate after re-identifying every sensor: %s\n",
              engine.run(renamed, proof, scheme.verifier()).all_accept
                  ? "still accepted"
                  : "rejected (bug)");

  // Grow the network by one sensor: parity flips, the world must object.
  Graph grown = net;
  const int extra = grown.add_node(500);
  grown.add_edge(extra, 0);
  const RunResult alarm = engine.run(grown, [&] {
        Proof p = proof;
        p.labels.push_back(BitString{});
        return p;
      }(), scheme.verifier());
  std::printf("after one sensor joins (n even): %zu sensor(s) object\n",
              alarm.rejecting.size());
  return 0;
}
