// A guided tour of the observability stack: one VerificationSession — a
// composed scheme, an incremental engine with a worker pool, a shared
// ball store, and a ComposedMaintainer — runs a churn stream with the
// Telemetry bundle, the flight-recorder journal, and rejection forensics
// all attached, then breaks its own certificate on purpose and dumps
// everything the diagnosis tier saw:
//
//   telemetry_metrics.json    the full metric snapshot (every layer:
//                             session.*, engine.*, store.*, pool.*,
//                             maintainer.*)
//   telemetry_trace.json      Chrome trace-event JSON; load it in
//                             chrome://tracing or https://ui.perfetto.dev
//                             to see the nested apply -> phase -> engine
//                             span tree per iteration
//   telemetry_journal.jsonl   the flight-recorder ring, one structured
//                             event per line (batches, repairs, reproves,
//                             lane dispatches, verdict flips)
//   telemetry_rejection.json  the RejectionReport for the tampered batch:
//                             rejecting centers, serialized witness balls,
//                             the greedily shrunken sub-batch, repair
//                             history, and the journal window
//   telemetry_prometheus.txt  Prometheus text exposition of the snapshot
//                             plus the RateSampler's derived rates
//
// plus a console digest of apply-latency percentiles, the per-phase
// breakdown, and the forensic summary.
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "algo/matching.hpp"
#include "core/ball_store.hpp"
#include "core/session.hpp"
#include "dynamic/maintainer.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/forensics.hpp"
#include "obs/journal.hpp"
#include "obs/telemetry.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

int main() {
  using namespace lcp;

  // A connected instance carrying both certificates the conjunction
  // needs: a leader flag and a greedy maximal matching on edge labels.
  const int n = 2000;
  Graph g = gen::random_connected(n, 2.0 / n, 20260808);
  g.set_label(0, schemes::kLeaderFlag);
  const std::vector<bool> matched = greedy_maximal_matching(g);
  for (int e = 0; e < g.m(); ++e) {
    if (matched[static_cast<std::size_t>(e)]) {
      g.set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
    }
  }

  // One bundle, shared explicitly (telemetry(true) would make a private
  // one); the store and the small worker pool exist so their layers show
  // up in the snapshot.  journal(true) threads the flight recorder
  // through the engine, store, and maintainer; forensics(true) arms the
  // rejection capture.
  auto sink = std::make_shared<obs::Telemetry>();
  auto store = std::make_shared<BallStore>();
  auto session =
      VerificationSession::on(std::move(g))
          .scheme("leader-election & maximal-matching")
          .engine(EngineKind::kIncremental)
          .engine_options({.shard_threads = 2, .shard_min_centers = 1})
          .store(store)
          .maintain(true)
          .telemetry(sink)
          .journal(true)
          .forensics(true)
          .build();

  std::printf("scheme:     %s\n", session.scheme().name().c_str());
  std::printf("maintainer: %s\n\n",
              session.maintainer_bound() ? session.maintainer()->name().c_str()
                                         : "(none)");

  // A sliding-window sampler over the same registry the session writes:
  // sampled before and after the stream, it derives events-per-second
  // rates for the Prometheus dump below.
  obs::RateSampler sampler(sink->metrics, {.window = 4});
  sampler.sample_now();

  // Link churn: every iteration drops a few random edges and restores the
  // previous iteration's, exactly the serving pattern the maintainers
  // repair in O(deg).
  const int iterations = 30;
  std::vector<std::pair<int, int>> removed;
  int accepted = 0;
  for (int it = 0; it < iterations; ++it) {
    MutationBatch batch;
    for (const auto& [u, v] : removed) batch.add_edge(u, v);
    removed.clear();
    std::mt19937 rng(static_cast<std::uint32_t>(7919 * it + 13));
    for (int i = 0; i < 5; ++i) {
      const int e = std::uniform_int_distribution<int>(
          0, session.graph().m() - 1)(rng);
      const int u = session.graph().edge_u(e);
      const int v = session.graph().edge_v(e);
      if (session.graph().has_edge(u, v)) {
        batch.remove_edge(u, v);
        removed.emplace_back(u, v);
      }
    }
    if (session.apply(batch).all_accept) ++accepted;
  }
  // Restore the last iteration's removals.  Churn on a graph this sparse
  // occasionally removes a bridge, which genuinely falsifies
  // leader-election until the edge returns — those transient rejections
  // are real (and leave forensic reports of their own); healing here gets
  // the session back to a clean accept before the deliberate tamper below.
  {
    MutationBatch heal;
    for (const auto& [u, v] : removed) heal.add_edge(u, v);
    removed.clear();
    if (!session.apply(heal).all_accept) {
      // Churn can also strand the matching in a non-maximal state on
      // edges no batch ever touched (the O(deg) maintainers only see the
      // mutated edges).  Re-issue the greedy matching as label ops, the
      // way an operator would after reading the rejection report.
      const std::vector<bool> fresh = greedy_maximal_matching(session.graph());
      MutationBatch fix;
      for (int e = 0; e < session.graph().m(); ++e) {
        const std::uint64_t want = fresh[static_cast<std::size_t>(e)]
                                       ? schemes::MaximalMatchingScheme::kMatchedBit
                                       : 0;
        if (session.graph().edge_label(e) != want) {
          fix.set_edge_label(session.graph().edge_u(e),
                             session.graph().edge_v(e), want);
        }
      }
      if (!session.apply(fix).all_accept) {
        std::printf("unexpected: session still rejecting after heal\n");
        return 1;
      }
    }
    session.clear_last_rejection();
  }
  sampler.sample_now();
  std::printf("ran %d churn iterations, %d accepted\n\n", iterations,
              accepted);

  // The session-level digest: percentile apply latency + phase breakdown.
  const SessionTelemetry digest = session.telemetry();
  std::printf("apply latency: p50 %.1f us, p90 %.1f us, p99 %.1f us over "
              "%llu applies\n",
              digest.apply_p50_us, digest.apply_p90_us, digest.apply_p99_us,
              static_cast<unsigned long long>(digest.applies));
  std::printf("%-10s %8s %12s %12s\n", "phase", "count", "total us",
              "p99 us");
  for (const SessionTelemetry::Phase& phase : digest.phases) {
    std::printf("%-10s %8llu %12.1f %12.1f\n", phase.name.c_str(),
                static_cast<unsigned long long>(phase.count), phase.total_us,
                phase.p99_us);
  }

  // A few cross-layer metrics, read straight off the snapshot.
  const obs::MetricSnapshot snap = sink->metrics.snapshot();
  std::printf("\ncross-layer gauges (of %zu metrics total):\n",
              snap.counters.size() + snap.gauges.size() +
                  snap.histograms.size());
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "session.repaired" || gauge.name == "session.reproves" ||
        gauge.name == "store.ball.hit_rate" ||
        gauge.name == "engine.incremental.views_patched" ||
        gauge.name == "pool.incremental.lanes" ||
        gauge.name == "maintainer.composed.repaired_batches") {
      std::printf("  %-42s %10.2f\n", gauge.name.c_str(), gauge.value);
    }
  }
  std::printf("  %-42s %10.2f /s\n", "session.batches (windowed rate)",
              sampler.rate_of("session.batches"));

  // --- Break the certificate on purpose. ---------------------------------
  //
  // A proof tamper alone would heal: the maintainer declines, the session
  // re-proves, and the verdict stays green.  To force a real rejection we
  // falsify the *property* — clearing the leader flag leaves the
  // leader-election half of the conjunction with nothing to certify, the
  // re-prove fails, and the stale proof is rejected by every center that
  // can see the damage.  The batch buries the tamper among innocent edge
  // churn so the forensic shrink has something to do.
  std::printf("\n--- tampering: clearing the leader flag on node 0 ---\n");
  MutationBatch tamper;
  {
    std::mt19937 rng(424242);
    for (int i = 0; i < 3; ++i) {
      const int u = std::uniform_int_distribution<int>(
          1, session.graph().n() - 1)(rng);
      const int v = std::uniform_int_distribution<int>(
          1, session.graph().n() - 1)(rng);
      if (u != v && !session.graph().has_edge(u, v)) tamper.add_edge(u, v);
    }
    tamper.set_node_label(0, 0);  // the tamper itself
  }
  const RunResult verdict = session.apply(tamper);
  std::printf("verdict: %s (%zu rejecting centers)\n",
              verdict.all_accept ? "accept" : "REJECT",
              verdict.rejecting.size());

  if (session.last_rejection().has_value()) {
    const obs::RejectionReport& report = *session.last_rejection();
    std::printf("\nrejection forensics (batch %llu, generation %llu):\n",
                static_cast<unsigned long long>(report.batch_index),
                static_cast<unsigned long long>(report.generation));
    std::printf("  shrunken batch: %zu of %zu applied op(s) suffice to "
                "reject (%llu shrink evals)\n",
                report.minimal_batch.size(), report.mutation_batch.size(),
                static_cast<unsigned long long>(report.shrink_evals));
    std::printf("  witness balls:  %zu (radius %d)\n",
                report.witnesses.size(), report.radius);
    for (const obs::RejectionWitness& w : report.witnesses) {
      std::printf("    center %d%s: %d node(s) in view\n", w.center,
                  w.newly_rejecting ? " [newly rejecting]" : "",
                  w.view.ball.n());
    }
    std::printf("  journal window: %zu event(s) before the flip\n",
                report.journal_window.size());

    std::FILE* rejection_out = std::fopen("telemetry_rejection.json", "w");
    if (rejection_out != nullptr) {
      std::fputs(report.to_json().c_str(), rejection_out);
      std::fputs("\n", rejection_out);
      std::fclose(rejection_out);
    }
  } else {
    std::printf("unexpected: no rejection report captured\n");
    return 1;
  }

  // Full exports.
  std::FILE* metrics_out = std::fopen("telemetry_metrics.json", "w");
  if (metrics_out != nullptr) {
    std::fputs(sink->snapshot_json().c_str(), metrics_out);
    std::fclose(metrics_out);
  }
  std::FILE* trace_out = std::fopen("telemetry_trace.json", "w");
  if (trace_out != nullptr) {
    std::fputs(sink->trace.to_chrome_json().c_str(), trace_out);
    std::fclose(trace_out);
  }
  std::FILE* journal_out = std::fopen("telemetry_journal.jsonl", "w");
  if (journal_out != nullptr) {
    std::fputs(session.journal()->to_jsonl().c_str(), journal_out);
    std::fclose(journal_out);
  }
  std::FILE* prom_out = std::fopen("telemetry_prometheus.txt", "w");
  if (prom_out != nullptr) {
    std::fputs(obs::to_prometheus_text(sink->metrics.snapshot()).c_str(),
               prom_out);
    std::fputs(sampler.to_prometheus_text().c_str(), prom_out);
    std::fclose(prom_out);
  }
  std::printf("\nwrote telemetry_metrics.json (%zu metrics), "
              "telemetry_trace.json (%zu spans),\n"
              "      telemetry_journal.jsonl (%llu events), "
              "telemetry_rejection.json, telemetry_prometheus.txt\n",
              snap.counters.size() + snap.gauges.size() +
                  snap.histograms.size(),
              sink->trace.event_count(),
              static_cast<unsigned long long>(
                  session.journal()->total_emitted()));
  std::printf("open chrome://tracing (or https://ui.perfetto.dev) and load "
              "telemetry_trace.json to browse the span tree\n");
  return 0;
}
