// A guided tour of the telemetry layer: one VerificationSession — a
// composed scheme, an incremental engine with a worker pool, a shared
// ball store, and a ComposedMaintainer — runs a churn stream with a
// Telemetry bundle attached, then dumps everything the bundle saw:
//
//   telemetry_metrics.json  the full metric snapshot (every layer:
//                           session.*, engine.*, store.*, pool.*,
//                           maintainer.*)
//   telemetry_trace.json    Chrome trace-event JSON; load it in
//                           chrome://tracing or https://ui.perfetto.dev
//                           to see the nested apply -> phase -> engine
//                           span tree per iteration
//
// plus a console digest of apply-latency percentiles and the per-phase
// breakdown.
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "algo/matching.hpp"
#include "core/ball_store.hpp"
#include "core/session.hpp"
#include "dynamic/maintainer.hpp"
#include "graph/generators.hpp"
#include "obs/telemetry.hpp"
#include "schemes/matching_schemes.hpp"
#include "schemes/tree_certified.hpp"

int main() {
  using namespace lcp;

  // A connected instance carrying both certificates the conjunction
  // needs: a leader flag and a greedy maximal matching on edge labels.
  const int n = 2000;
  Graph g = gen::random_connected(n, 2.0 / n, 20260808);
  g.set_label(0, schemes::kLeaderFlag);
  const std::vector<bool> matched = greedy_maximal_matching(g);
  for (int e = 0; e < g.m(); ++e) {
    if (matched[static_cast<std::size_t>(e)]) {
      g.set_edge_label(e, schemes::MaximalMatchingScheme::kMatchedBit);
    }
  }

  // One bundle, shared explicitly (telemetry(true) would make a private
  // one); the store and the small worker pool exist so their layers show
  // up in the snapshot.
  auto sink = std::make_shared<obs::Telemetry>();
  auto store = std::make_shared<BallStore>();
  auto session =
      VerificationSession::on(std::move(g))
          .scheme("leader-election & maximal-matching")
          .engine(EngineKind::kIncremental)
          .engine_options({.shard_threads = 2, .shard_min_centers = 1})
          .store(store)
          .maintain(true)
          .telemetry(sink)
          .build();

  std::printf("scheme:     %s\n", session.scheme().name().c_str());
  std::printf("maintainer: %s\n\n",
              session.maintainer_bound() ? session.maintainer()->name().c_str()
                                         : "(none)");

  // Link churn: every iteration drops a few random edges and restores the
  // previous iteration's, exactly the serving pattern the maintainers
  // repair in O(deg).
  const int iterations = 30;
  std::vector<std::pair<int, int>> removed;
  int accepted = 0;
  for (int it = 0; it < iterations; ++it) {
    MutationBatch batch;
    for (const auto& [u, v] : removed) batch.add_edge(u, v);
    removed.clear();
    std::mt19937 rng(static_cast<std::uint32_t>(7919 * it + 13));
    for (int i = 0; i < 5; ++i) {
      const int e = std::uniform_int_distribution<int>(
          0, session.graph().m() - 1)(rng);
      const int u = session.graph().edge_u(e);
      const int v = session.graph().edge_v(e);
      if (session.graph().has_edge(u, v)) {
        batch.remove_edge(u, v);
        removed.emplace_back(u, v);
      }
    }
    if (session.apply(batch).all_accept) ++accepted;
  }
  std::printf("ran %d churn iterations, %d accepted\n\n", iterations,
              accepted);

  // The session-level digest: percentile apply latency + phase breakdown.
  const SessionTelemetry digest = session.telemetry();
  std::printf("apply latency: p50 %.1f us, p90 %.1f us, p99 %.1f us over "
              "%llu applies\n",
              digest.apply_p50_us, digest.apply_p90_us, digest.apply_p99_us,
              static_cast<unsigned long long>(digest.applies));
  std::printf("%-10s %8s %12s %12s\n", "phase", "count", "total us",
              "p99 us");
  for (const SessionTelemetry::Phase& phase : digest.phases) {
    std::printf("%-10s %8llu %12.1f %12.1f\n", phase.name.c_str(),
                static_cast<unsigned long long>(phase.count), phase.total_us,
                phase.p99_us);
  }

  // A few cross-layer metrics, read straight off the snapshot.
  const obs::MetricSnapshot snap = sink->metrics.snapshot();
  std::printf("\ncross-layer gauges (of %zu metrics total):\n",
              snap.counters.size() + snap.gauges.size() +
                  snap.histograms.size());
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "session.repaired" || gauge.name == "session.reproves" ||
        gauge.name == "store.ball.hit_rate" ||
        gauge.name == "engine.incremental.views_patched" ||
        gauge.name == "pool.incremental.lanes" ||
        gauge.name == "maintainer.composed.repaired_batches") {
      std::printf("  %-42s %10.2f\n", gauge.name.c_str(), gauge.value);
    }
  }

  // Full exports.
  std::FILE* metrics_out = std::fopen("telemetry_metrics.json", "w");
  if (metrics_out != nullptr) {
    std::fputs(sink->snapshot_json().c_str(), metrics_out);
    std::fclose(metrics_out);
  }
  std::FILE* trace_out = std::fopen("telemetry_trace.json", "w");
  if (trace_out != nullptr) {
    std::fputs(sink->trace.to_chrome_json().c_str(), trace_out);
    std::fclose(trace_out);
  }
  std::printf("\nwrote telemetry_metrics.json (%zu metrics) and "
              "telemetry_trace.json (%zu spans)\n",
              snap.counters.size() + snap.gauges.size() +
                  snap.histograms.size(),
              sink->trace.event_count());
  std::printf("open chrome://tracing (or https://ui.perfetto.dev) and load "
              "telemetry_trace.json to browse the span tree\n");
  return 0;
}
